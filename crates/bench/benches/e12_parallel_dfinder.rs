//! E12 — parallel compositional deadlock checking and the lock-free intern
//! arena.
//!
//! Two workloads, both exercising the "scale with structure, not state
//! count" half of the verification stack:
//!
//! 1. **Trap enumeration across thread counts.** D-Finder's interaction
//!    invariants come from traps of the place/interaction abstraction,
//!    enumerated by per-seed SAT instances partitioned on each trap's
//!    minimum place (`bip_verify::dfinder`). The table measures traps/s at
//!    `--threads 1,2,8` on ≥24-component models and asserts (a) the trap
//!    lists and full `DFinderReport`s are **bit-identical for every thread
//!    count**, and (b) on hosts with ≥4 cores, ≥2× throughput at the best
//!    thread count on the trap-sparse ≥24-component gas-station family,
//!    where the enumeration must exhaust (nearly) every seed subspace and
//!    the work is evenly spread. Trap-dense families (philosophers, where
//!    one seed fills the whole budget and the sequential prefix cut-off is
//!    already optimal) are tracked for report identity only. On hosts with
//!    fewer cores the speedup line is reported but not asserted — there is
//!    nothing to run in parallel on.
//!
//! 2. **Intern-hot bounded reachability.** The `unbounded_ring` family has
//!    genuinely unbounded counters: the adaptive codec interns every
//!    counter of every state, so the intern table sits on the hot path of
//!    every reach worker. Run bounded exploration across thread counts and
//!    assert report identity; the previous 16-shard-lock table serialized
//!    this exact path, the lock-free append-only arena does not.
//!
//! A `BENCH {...}` JSON line per measurement records the trajectory for CI
//! scraping; the schema is documented in `crates/bench/README.md`.

use bench::{gas_station, thread_counts, unbounded_ring};
use bip_core::{dining_philosophers, InternTable, System};
use bip_verify::dfinder::{enumerate_traps_with, Abstraction, DFinder, DFinderConfig};
use bip_verify::reach::{explore_with, ReachConfig};
use bip_verify::{Budget, StopReason};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Bound for the (infinite-state) intern-hot exploration.
const INTERN_BOUND: usize = 150_000;

/// Trap bound: high enough that ≥24-component models saturate the seed
/// queue with real work.
const MAX_TRAPS: usize = 256;

/// Fail-fast ceiling on SAT conflicts per solve: orders of magnitude above
/// what any healthy run here needs, so a solver blowup surfaces as a clean
/// `SolverBudget`-truncated report (asserted `Completed` below) instead of
/// a hung CI job.
const CONFLICT_CEILING: u64 = 200_000;

/// The shared bench config: every solve capped at [`CONFLICT_CEILING`].
fn cfg() -> DFinderConfig {
    DFinderConfig::new()
        .max_traps(MAX_TRAPS)
        .budget(Budget::unlimited().conflicts(CONFLICT_CEILING))
}

/// One timed sweep over the thread counts (best-of-three per count,
/// trap-list invariance asserted); returns `(best threads, best speedup)`.
fn sweep_traps(name: &str, abs: &Abstraction, threads: &[usize], quiet: bool) -> (usize, f64) {
    let mut reference: Option<(Vec<_>, f64)> = None;
    let mut best = (1usize, 0.0f64);
    for &th in threads {
        let cfg = cfg().threads(th);
        // Best of three: the speedup floor below is a merge gate on shared
        // CI runners, so damp scheduler noise rather than trusting one
        // un-warmed run per thread count.
        let mut secs = f64::INFINITY;
        let mut traps = Vec::new();
        for _ in 0..3 {
            let t = std::time::Instant::now();
            traps = enumerate_traps_with(abs, &cfg);
            secs = secs.min(t.elapsed().as_secs_f64().max(1e-9));
        }
        let speedup = match &reference {
            None => {
                reference = Some((traps.clone(), secs));
                1.0
            }
            Some((ref_traps, ref_secs)) => {
                assert_eq!(
                    &traps, ref_traps,
                    "{name}: trap list must be thread-count invariant"
                );
                ref_secs / secs
            }
        };
        if speedup > best.1 {
            best = (th, speedup);
        }
        if quiet {
            continue;
        }
        println!(
            "{name:>14} threads={th}  {:>4} traps  {:>9.0} traps/s  speedup {speedup:>5.2}x",
            traps.len(),
            traps.len() as f64 / secs,
        );
        println!(
            "BENCH {{\"bench\":\"e12\",\"workload\":\"traps\",\"system\":\"{name}\",\"places\":{},\"threads\":{th},\"traps\":{},\"secs\":{secs:.4},\"wall_ms\":{:.1},\"traps_per_sec\":{:.0},\"speedup\":{speedup:.2}}}",
            abs.num_places,
            traps.len(),
            secs * 1e3,
            traps.len() as f64 / secs,
        );
    }
    best
}

/// Measure trap enumeration on one system across thread counts, assert
/// report bit-identity, and (optionally) gate on a speedup floor.
fn bench_traps(name: &str, sys: &System, threads: &[usize], assert_speedup: Option<f64>) {
    let abs = Abstraction::new(sys);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut best = sweep_traps(name, &abs, threads, false);
    // The whole report — verdict, counts, sat_conflicts — must agree too,
    // and the fail-fast conflict ceiling must never actually trip on a
    // healthy run.
    let r1 = DFinder::with_config(sys, &cfg()).check_deadlock_freedom();
    assert_eq!(
        r1.stop,
        StopReason::Completed,
        "{name}: the {CONFLICT_CEILING}-conflict fail-fast ceiling tripped"
    );
    for &th in threads {
        let rt = DFinder::with_config(sys, &cfg().threads(th)).check_deadlock_freedom();
        assert_eq!(r1, rt, "{name}: DFinderReport must be bit-identical");
    }
    // Final-check solver counters (thread-count invariant by the assert
    // above, so one line per system suffices).
    println!(
        "BENCH {{\"bench\":\"e12\",\"workload\":\"final_check\",\"system\":\"{name}\",\"deadlock_free\":{},\"traps\":{},\"sat_conflicts\":{},\"sat_decisions\":{},\"sat_propagations\":{},\"avg_lbd_milli\":{},\"wall_ms\":{}}}",
        r1.verdict.is_deadlock_free(),
        r1.traps,
        r1.sat_conflicts,
        r1.sat_decisions,
        r1.sat_propagations,
        r1.avg_lbd_milli,
        r1.wall.millis(),
    );
    if let Some(floor) = assert_speedup {
        if cores >= 4 {
            // One retry before failing the gate: a single noisy-neighbor
            // stall on a shared runner should not fail the build.
            if best.1 < floor {
                println!(
                    "{name:>14} (first pass {:.2}x below the {floor}x floor — remeasuring)",
                    best.1
                );
                let again = sweep_traps(name, &abs, threads, true);
                if again.1 > best.1 {
                    best = again;
                }
            }
            assert!(
                best.1 >= floor,
                "{name}: expected >= {floor}x trap-enumeration speedup, got {:.2}x at threads={}",
                best.1,
                best.0
            );
        } else {
            println!("{name:>14} (speedup floor {floor}x not asserted: host has {cores} core(s))");
        }
    }
}

/// Bounded exploration with every encode interning (unbounded counters):
/// the intern arena is on every worker's hot path.
fn bench_intern_reach(threads: &[usize]) {
    let sys = unbounded_ring(4);
    let mut reference = None;
    for &th in threads {
        let t = std::time::Instant::now();
        let r = explore_with(&sys, &ReachConfig::bounded(INTERN_BOUND).threads(th));
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        match &reference {
            None => reference = Some(r.clone()),
            Some(f) => {
                assert_eq!(r.states, f.states, "intern-hot: states");
                assert_eq!(r.transitions, f.transitions, "intern-hot: transitions");
                assert_eq!(r.complete, f.complete, "intern-hot: complete");
                assert_eq!(r.stored_bytes, f.stored_bytes, "intern-hot: footprint");
            }
        }
        println!(
            "{:>14} threads={th}  {:>7} states  {:>9.0} st/s  {:.1} B/state",
            "uring-4",
            r.states,
            r.states as f64 / secs,
            r.bytes_per_state(),
        );
        println!(
            "BENCH {{\"bench\":\"e12\",\"workload\":\"intern_reach\",\"system\":\"uring-4\",\"threads\":{th},\"states\":{},\"secs\":{secs:.4},\"wall_ms\":{:.1},\"states_per_sec\":{:.0},\"bytes_per_state\":{:.2},\"peak_bytes\":{},\"stop\":\"{:?}\"}}",
            r.states,
            secs * 1e3,
            r.states as f64 / secs,
            r.bytes_per_state(),
            r.peak_bytes,
            r.stop,
        );
    }
    // Raw intern throughput: distinct-value appends plus re-intern hits
    // from concurrent threads, the contention profile of a parallel encode.
    let workers = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    let table = InternTable::default();
    let per = 200_000usize;
    let t = std::time::Instant::now();
    std::thread::scope(|s| {
        for w in 0..workers {
            let table = &table;
            s.spawn(move || {
                for i in 0..per {
                    // ~1/8 distinct values, 7/8 hot re-interns.
                    table.intern(((i + w * 7) % (per / 8)) as i64);
                }
            });
        }
    });
    let secs = t.elapsed().as_secs_f64().max(1e-9);
    let ops = (workers * per) as f64;
    println!(
        "{:>14} {workers} workers  {:>9.0} intern ops/s  ({} distinct)",
        "intern-table",
        ops / secs,
        table.len(),
    );
    println!(
        "BENCH {{\"bench\":\"e12\",\"workload\":\"intern_ops\",\"workers\":{workers},\"ops\":{ops},\"secs\":{secs:.4},\"wall_ms\":{:.1},\"ops_per_sec\":{:.0},\"distinct\":{}}}",
        secs * 1e3,
        ops / secs,
        table.len(),
    );
}

fn table() {
    let threads = thread_counts("E12_THREADS", &[1, 2, 8]);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nE12: parallel compositional deadlock checking + lock-free intern arena");
    println!("(threads tested: {threads:?}; override with --threads a,b,c)");
    println!("(host parallelism: {cores} — the 2x floor is asserted only on >= 4 cores)\n");
    // The >= 2x floor applies to the trap-sparse gas-station family
    // (242 components): its few dozen traps are spread over the whole
    // place set, so the enumeration must exhaust nearly every min-place
    // subspace — real, evenly distributed parallel work. The philosophers
    // rows track the opposite regime (seed 0 alone fills the budget, so
    // the sequential prefix cut-off is already optimal and parallelism
    // can only break even): they gate report identity, not speed.
    bench_traps("gas-240", &gas_station(240), &threads, Some(2.0));
    bench_traps("cring-24x2", &bench::counter_ring(24, 2), &threads, None);
    bench_traps(
        "phil-12",
        &dining_philosophers(12, false).unwrap(),
        &threads,
        None,
    );
    bench_traps(
        "phil-12-2p",
        &dining_philosophers(12, true).unwrap(),
        &threads,
        None,
    );
    println!();
    bench_intern_reach(&threads);
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e12");
    g.sample_size(10);
    let sys = gas_station(120);
    let abs = Abstraction::new(&sys);
    for th in [1usize, 8] {
        g.bench_with_input(
            BenchmarkId::new(format!("traps_threads_{th}"), 120),
            &abs,
            |b, abs| {
                let cfg = cfg().threads(th);
                b.iter(|| enumerate_traps_with(abs, &cfg).len())
            },
        );
    }
    let uring = unbounded_ring(4);
    g.bench_with_input(
        BenchmarkId::new("intern_reach", "uring-4"),
        &uring,
        |b, sys| b.iter(|| explore_with(sys, &ReachConfig::bounded(INTERN_BOUND)).states),
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
