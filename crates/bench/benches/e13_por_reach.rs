//! E13 — persistent-set partial-order reduction vs. exhaustive
//! interleaving, on the philosophers family (the paper's state-explosion
//! discussion, §4.3) and the var-heavy counter ring.
//!
//! The reduction (`ReachConfig::reduction(Reduction::Persistent)`) runs on
//! the static independence tables of `bip_core::indep`, computed once
//! per system from build-time data: per-interaction support rows decide, per expanded
//! state, a deterministic persistent subset of the enabled interactions to
//! fire. Component-heavy families spend almost all of their state space on
//! permutations of independent interactions, so the reduced graph shrinks
//! multiplicatively with size — and the effect *compounds* with the packed
//! codec and the parallel engine instead of overlapping them.
//!
//! Asserted here (so the CI bench smoke enforces it):
//!
//! * **verdict preservation** — deadlock sets, `deadlock_free()`,
//!   `complete`, `find_deadlock` and `check_invariant` verdicts agree
//!   between `Reduction::Persistent` and `Reduction::None` on every system
//!   measured;
//! * **≥ 3× fewer stored states** on the 16-philosophers family under
//!   reduction (measured ~30×, growing with n);
//! * **no regression with reduction off** — `Reduction::None` reports are
//!   bit-identical to the default configuration's;
//! * **bit-identity across thread counts** in *both* modes.
//!
//! Thread counts default to `1,2,4`; override with `--threads 1,4,8` (or
//! the `E13_THREADS` environment variable).

use bench::{counter_ring, thread_counts};
use bip_core::{dining_philosophers, State, StatePred, System};
use bip_verify::reach::{
    check_invariant_with, explore_with, find_deadlock_with, ReachConfig, ReachReport, Reduction,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const BOUND: usize = 4_000_000;

fn assert_same(a: &ReachReport, b: &ReachReport, ctx: &str) {
    assert_eq!(a.states, b.states, "{ctx}: states");
    assert_eq!(a.transitions, b.transitions, "{ctx}: transitions");
    assert_eq!(a.complete, b.complete, "{ctx}: complete");
    assert_eq!(a.deadlocks, b.deadlocks, "{ctx}: deadlock order");
    assert_eq!(a.stored_bytes, b.stored_bytes, "{ctx}: footprint");
}

/// Deadlock-verdict equivalence between modes: same deadlock *set* (BFS
/// order may differ), same completeness, same `deadlock_free()`.
fn assert_verdicts(full: &ReachReport, red: &ReachReport, ctx: &str) {
    assert_eq!(full.complete, red.complete, "{ctx}: complete");
    let a: std::collections::HashSet<&State> = full.deadlocks.iter().collect();
    let b: std::collections::HashSet<&State> = red.deadlocks.iter().collect();
    assert_eq!(a, b, "{ctx}: deadlock set");
    assert_eq!(full.deadlock_free(), red.deadlock_free(), "{ctx}: verdict");
}

/// Measure one system: exhaustive vs reduced exploration, verdict
/// equivalence, thread bit-identity in both modes, and the stored-state
/// shrink factor (asserted ≥ `min_shrink` when set).
fn bench_system(name: &str, sys: &System, threads: &[usize], min_shrink: Option<f64>) {
    let t = std::time::Instant::now();
    let full = explore_with(sys, &ReachConfig::bounded(BOUND));
    let full_secs = t.elapsed().as_secs_f64();
    // No regression with reduction off: `Reduction::None` is the default —
    // an explicit `.reduction(Reduction::None)` must change nothing.
    let off = explore_with(sys, &ReachConfig::bounded(BOUND).reduction(Reduction::None));
    assert_same(&off, &full, &format!("{name}: reduction off"));

    let t = std::time::Instant::now();
    let red = explore_with(
        sys,
        &ReachConfig::bounded(BOUND).reduction(Reduction::Persistent),
    );
    let red_secs = t.elapsed().as_secs_f64();
    assert_verdicts(&full, &red, name);

    // Thread bit-identity, both modes.
    for &th in threads {
        let f = explore_with(
            sys,
            &ReachConfig::bounded(BOUND)
                .threads(th)
                .min_parallel_level(1),
        );
        assert_same(&f, &full, &format!("{name}: none/threads={th}"));
        let r = explore_with(
            sys,
            &ReachConfig::bounded(BOUND)
                .reduction(Reduction::Persistent)
                .threads(th)
                .min_parallel_level(1),
        );
        assert_same(&r, &red, &format!("{name}: persistent/threads={th}"));
    }

    // Witness-search verdicts agree between modes.
    let df = find_deadlock_with(sys, &ReachConfig::bounded(BOUND));
    let dr = find_deadlock_with(
        sys,
        &ReachConfig::bounded(BOUND).reduction(Reduction::Persistent),
    );
    assert_eq!(df.found(), dr.found(), "{name}: find_deadlock found");
    assert_eq!(
        df.deadlock_free(),
        dr.deadlock_free(),
        "{name}: find_deadlock verdict"
    );
    let inv = StatePred::at(sys, 0, sys.atom_type(0).locations()[0].as_str());
    let i_full = check_invariant_with(sys, &inv, &ReachConfig::bounded(BOUND));
    let i_red = check_invariant_with(
        sys,
        &inv,
        &ReachConfig::bounded(BOUND).reduction(Reduction::Persistent),
    );
    assert_eq!(i_full.holds(), i_red.holds(), "{name}: invariant verdict");
    assert_eq!(
        i_full.violation.is_some(),
        i_red.violation.is_some(),
        "{name}: invariant violation found"
    );

    let shrink = full.states as f64 / red.states.max(1) as f64;
    println!(
        "{name:>12} {:>9} states -> {:>8} reduced  ({shrink:>6.2}x, {:.2}s -> {:.2}s)",
        full.states, red.states, full_secs, red_secs
    );
    println!(
        "BENCH {{\"bench\":\"e13\",\"system\":\"{name}\",\"full_states\":{},\"reduced_states\":{},\"shrink\":{shrink:.2},\"full_secs\":{full_secs:.3},\"reduced_secs\":{red_secs:.3},\"wall_ms\":{:.1},\"peak_bytes\":{},\"stop\":\"{:?}\"}}",
        full.states,
        red.states,
        red.elapsed.as_secs_f64() * 1e3,
        red.peak_bytes,
        red.stop,
    );
    if let Some(f) = min_shrink {
        assert!(
            red.states as f64 * f <= full.states as f64,
            "{name}: reduction must store >= {f}x fewer states \
             (full {}, reduced {})",
            full.states,
            red.states
        );
    } else {
        assert!(
            red.states <= full.states,
            "{name}: reduction must never grow the stored set"
        );
    }
}

fn table() {
    let threads = thread_counts("E13_THREADS", &[1, 2, 4]);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nE13: persistent-set partial-order reduction vs exhaustive interleaving");
    println!("(threads tested: {threads:?}; override with --threads a,b,c)");
    println!("(host parallelism: {cores})\n");
    // The deadlocking two-phase family: the acceptance floor is a hard 3x
    // stored-state shrink at n = 16 (measured ~30x and growing with n).
    for (n, floor) in [(12usize, None), (16, Some(3.0))] {
        let sys = dining_philosophers(n, true).unwrap();
        bench_system(&format!("phil-{n}"), &sys, &threads, floor);
    }
    // The deadlock-free conservative variant: verdict preservation on the
    // "free" side of the trichotomy.
    let sys = dining_philosophers(10, false).unwrap();
    bench_system("cphil-10", &sys, &threads, None);
    // Var-heavy counter ring: data-bearing supports (reads/writes rows)
    // with singleton `work` connectors — heavy independence among counters.
    let sys = counter_ring(5, 3);
    bench_system("cring-5x3", &sys, &threads, None);
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e13");
    g.sample_size(10);
    let sys = dining_philosophers(12, true).unwrap();
    g.bench_with_input(BenchmarkId::new("exhaustive", 12), &sys, |b, sys| {
        b.iter(|| explore_with(sys, &ReachConfig::bounded(BOUND)).states)
    });
    g.bench_with_input(BenchmarkId::new("persistent", 12), &sys, |b, sys| {
        b.iter(|| {
            explore_with(
                sys,
                &ReachConfig::bounded(BOUND).reduction(Reduction::Persistent),
            )
            .states
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
