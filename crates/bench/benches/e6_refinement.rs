//! E6 — Fig. 5.4: interaction refinement by Send/Receive. The table prints
//! the verdicts (equivalence for the conflict-free case; deadlock and
//! trace violation under conflicts); the measurements time the refinement
//! and its certificate.

use bip_distributed::fig54::{fig54_conflict_pair, refine_interactions};
use bip_verify::reach::find_deadlock;
use bip_verify::refines;
use criterion::{criterion_group, criterion_main, Criterion};

fn barrier(n: usize) -> bip_core::System {
    let w = bip_core::AtomBuilder::new("w")
        .port("sync")
        .location("run")
        .initial("run")
        .transition("run", "sync", "run")
        .build()
        .unwrap();
    let mut sb = bip_core::SystemBuilder::new();
    let ids: Vec<usize> = (0..n)
        .map(|i| sb.add_instance(format!("w{i}"), &w))
        .collect();
    sb.add_connector(bip_core::ConnectorBuilder::rendezvous(
        "barrier",
        ids.iter().map(|&i| (i, "sync".to_string())),
    ));
    sb.build().unwrap()
}

fn table() {
    println!("\nE6: Fig 5.4 interaction refinement verdicts");
    for n in [2usize, 3, 4] {
        let orig = barrier(n);
        let refined = refine_interactions(&orig).unwrap();
        let cert = refines(&orig, &refined.system, refined.rename(), 500_000);
        println!(
            "  {n}-party barrier     : trace-included={} refines={}",
            cert.trace_included,
            cert.refines()
        );
    }
    let (orig, refined) = fig54_conflict_pair();
    let cert = refines(&orig, &refined.system, refined.rename(), 500_000);
    let dead = find_deadlock(&refined.system, 500_000).found();
    println!(
        "  conflict cycle (fig)  : trace-included={} deadlock-introduced={} refines={}",
        cert.trace_included,
        dead,
        cert.refines()
    );
    let phils = bip_core::dining_philosophers(2, false).unwrap();
    let naive = refine_interactions(&phils).unwrap();
    let cert = refines(&phils, &naive.system, naive.rename(), 2_000_000);
    println!(
        "  philosophers (naive)  : trace-included={} cex={:?}",
        cert.trace_included, cert.counterexample
    );
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e6");
    g.sample_size(10);
    let orig = barrier(3);
    g.bench_function("refine_3_party", |b| {
        b.iter(|| refine_interactions(&orig).unwrap())
    });
    let refined = refine_interactions(&orig).unwrap();
    g.bench_function("certificate_3_party", |b| {
        b.iter(|| refines(&orig, &refined.system, refined.rename(), 500_000).refines())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
