//! E18 — resilience under injected faults, verified by every engine.
//!
//! The model half runs the crash-recovery philosophers
//! ([`bench::crash_recovery_philosophers`]) in both directions:
//!
//! * **refutation** — the unrecoverable variant (any philosopher or fork may
//!   die and never come back) has a planted bug: the all-crashed global
//!   deadlock is reachable. Explicit reach finds it (violation state +
//!   trace, replayed step by step here), BMC finds the *shortest* witness
//!   (exactly one crash interaction per component, asserted), and
//!   `find_deadlock` confirms the dead end — with the reach report
//!   bit-identical across 1/2/8 threads;
//! * **proof** — the fault-budgeted variant (at most one concurrent crash,
//!   crashed components restart from their initial valuation) satisfies
//!   [`bip_core::fault::single_fault_invariant`], which is 1-inductive by
//!   construction: k-induction proves it outright, a fresh-solver
//!   [`certify_step`] certificate re-checks the step relation, and the
//!   explicit engine agrees the variant is deadlock-free. The
//!   [`IncrementalVerifier`] fault helpers (`verify_invariant_under`,
//!   `find_deadlock_under`) drive both checks.
//!
//! The runtime half exercises the adversarial `netsim` fault engine:
//!
//! * **lossy ring election** at 10²–10³ nodes — max-flooding leader
//!   election with periodic retransmission under uniform message loss;
//!   every node must still learn the global maximum id (asserted), and
//!   same-seed runs must produce identical [`netsim::Stats`] (asserted);
//! * **partition-and-heal relay chain** — a 64-node chain relaying a
//!   sequence across a scheduled partition and a crash/restart (the
//!   [`netsim::Process::on_restart`] hook re-arms the node); blackout-era
//!   sequence numbers are lost, post-heal traffic flows, and the run is
//!   bit-reproducible.
//!
//! The tail reruns Graham's timing-anomaly experiment (`bip_rt::anomaly`) so
//! the robustness counterpoint — faster parts, slower system — is asserted
//! in CI alongside the fault families.

use bench::{crash_recovery_philosophers, thread_counts};
use bip_core::fault::{self, FaultSpec, RecoverSpec};
use bip_core::{Step, System};
use bip_rt::anomaly::{anomaly_experiment, partitioned_makespan, JobShop};
use bip_verify::bmc::BmcConfig;
use bip_verify::dfinder::DFinderConfig;
use bip_verify::kind::{certify_step, KindConfig, Verdict};
use bip_verify::reach::{check_invariant_with, explore_with, find_deadlock, ReachConfig};
use bip_verify::{Budget, IncrementalVerifier, InvariantOutcome, StopReason};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netsim::{Context, FaultPlan, Latency, Network, Process};

/// Philosophers per table (components = 2·n: philosophers + forks).
const PHIL_N: usize = 3;
/// Explicit-state budget; both variants stay comfortably under it.
const EXPLICIT_BUDGET: usize = 500_000;
/// Fail-fast ceiling on SAT conflicts (same idiom as e14/e17).
const CONFLICT_CEILING: u64 = 500_000;

/// Replay a step trace concretely from the initial state; every step must
/// be among the live successors at its position. Returns the final state.
fn replay(sys: &System, trace: &[Step]) -> bip_core::State {
    let mut st = sys.initial_state();
    for (i, step) in trace.iter().enumerate() {
        let succ = sys.successors(&st);
        let next = succ
            .iter()
            .find(|(s, _)| s == step)
            .unwrap_or_else(|| panic!("step {i} of the witness is not enabled: {step:?}"))
            .1
            .clone();
        st = next;
    }
    st
}

fn bench_model_refutation() {
    let doomed = crash_recovery_philosophers(PHIL_N, None, RecoverSpec::None);
    let crashable = fault::crashable_components(&doomed).len();
    assert_eq!(crashable, 2 * PHIL_N, "crash_all covers phils and forks");
    let inv = fault::all_crashed(&doomed).not();

    // Explicit reach finds the planted bug and hands back a concrete trace.
    let t = std::time::Instant::now();
    let explicit = check_invariant_with(&doomed, &inv, &ReachConfig::bounded(EXPLICIT_BUDGET));
    let reach_secs = t.elapsed().as_secs_f64();
    let (bad, steps) = explicit
        .violation
        .as_ref()
        .expect("unrecoverable crash-all: the all-crashed state must be reachable");
    let end = replay(&doomed, steps);
    assert_eq!(
        &end, bad,
        "reach witness must replay to the violating state"
    );
    assert!(!inv.eval(&doomed, &end));

    // BMC finds the shortest witness: one crash interaction per component.
    let t = std::time::Instant::now();
    let bmc = BmcConfig::new(&doomed)
        .bound(crashable)
        .budget(Budget::unlimited().conflicts(CONFLICT_CEILING))
        .check_invariant(&inv)
        .unwrap();
    let bmc_secs = t.elapsed().as_secs_f64();
    let (trace, states) = bmc
        .violation()
        .expect("BMC within the crash count must find the bug");
    assert_eq!(
        trace.len(),
        crashable,
        "shortest all-crashed witness is one crash per component"
    );
    assert_eq!(states.len(), crashable + 1);
    let end = replay(&doomed, trace);
    assert!(
        !inv.eval(&doomed, &end),
        "BMC witness must replay concretely"
    );

    // The all-crashed state is a dead end.
    let dead = find_deadlock(&doomed, EXPLICIT_BUDGET);
    assert!(dead.found(), "nobody recovers: the crash cascade deadlocks");

    // Fault-transformed reach is bit-identical across thread counts.
    let threads = thread_counts("E18_THREADS", &[1, 2, 8]);
    let base = explore_with(&doomed, &ReachConfig::bounded(EXPLICIT_BUDGET));
    assert!(base.complete);
    for &th in &threads {
        let r = explore_with(&doomed, &ReachConfig::bounded(EXPLICIT_BUDGET).threads(th));
        assert_eq!(r.states, base.states, "threads={th}: states");
        assert_eq!(r.transitions, base.transitions, "threads={th}: transitions");
        assert_eq!(r.complete, base.complete, "threads={th}: complete");
        assert_eq!(r.deadlocks, base.deadlocks, "threads={th}: deadlock order");
        assert_eq!(r.stored_bytes, base.stored_bytes, "threads={th}: footprint");
    }

    println!(
        "{:>16} refute: reach {} states ({reach_secs:.2}s), bmc {}-step witness \
         ({bmc_secs:.2}s), deadlock found, threads {threads:?} identical",
        format!("crash-phil-{PHIL_N}"),
        base.states,
        trace.len(),
    );
    println!(
        "BENCH {{\"bench\":\"e18\",\"family\":\"crash-phil\",\"variant\":\"unrecoverable\",\"n\":{PHIL_N},\"crashable\":{crashable},\"states\":{},\"bug_found\":true,\"bmc_trace_len\":{},\"deadlock_found\":true,\"threads_identical\":true,\"reach_secs\":{reach_secs:.3},\"bmc_secs\":{bmc_secs:.3}}}",
        base.states,
        trace.len(),
    );
}

fn bench_model_proof() {
    // The same table, fault-budgeted: at most one concurrent crash, crashed
    // components restart from their initial valuation.
    let base = bip_core::dining_philosophers(PHIL_N, false).unwrap();
    let spec = FaultSpec::crash_all()
        .recover(RecoverSpec::Restart)
        .budget(1);
    let saved = fault::inject(&base, &spec).unwrap();
    let inv = fault::single_fault_invariant(&saved);

    // Drive the proof through the IncrementalVerifier fault helpers — the
    // resilience API this bench exists to exercise.
    let inc = IncrementalVerifier::with_config(base, DFinderConfig::new().threads(2));
    let t = std::time::Instant::now();
    let out = inc
        .verify_invariant_under(&spec, &inv, 4, EXPLICIT_BUDGET)
        .unwrap();
    let prove_secs = t.elapsed().as_secs_f64();
    let InvariantOutcome::Proof(report) = &out else {
        panic!("recovery invariant must be settled by proof, got explicit fallback");
    };
    let Verdict::Proved { k } = report.verdict else {
        panic!("expected an unbounded proof, got {:?}", report.verdict);
    };
    assert_eq!(report.stop, StopReason::Completed);
    assert!(
        certify_step(&saved, &inv, k, 4096).unwrap(),
        "fresh-solver certificate must accept the k={k} step"
    );

    // And the budgeted variant never deadlocks: a crash is always either
    // available (budget free) or recoverable (budget spent).
    let dead = inc.find_deadlock_under(&spec, EXPLICIT_BUDGET).unwrap();
    assert!(dead.deadlock_free(), "recovery keeps the table live");

    // Sanity on the explicit side: the invariant really holds everywhere.
    let explicit = check_invariant_with(&saved, &inv, &ReachConfig::bounded(EXPLICIT_BUDGET));
    assert!(explicit.complete && explicit.violation.is_none());

    println!(
        "{:>16} prove: kind Proved {{ k: {k} }} + certificate ({prove_secs:.2}s), \
         deadlock-free, explicit agrees on {} states",
        format!("crash-phil-{PHIL_N}"),
        explicit.states,
    );
    println!(
        "BENCH {{\"bench\":\"e18\",\"family\":\"crash-phil\",\"variant\":\"budget1-restart\",\"n\":{PHIL_N},\"proved_k\":{k},\"certified\":true,\"deadlock_free\":true,\"states\":{},\"base_conflicts\":{},\"step_conflicts\":{},\"prove_secs\":{prove_secs:.3}}}",
        explicit.states,
        report.stats.base_conflicts,
        report.stats.step_conflicts,
    );
}

// ---------------------------------------------------------------------------
// Runtime half: netsim fault families.
// ---------------------------------------------------------------------------

/// Max-flooding ring election with periodic retransmission: every `PERIOD`
/// ticks each node re-sends the largest id it has seen to its successor,
/// for a fixed number of rounds. Loss only delays convergence — the
/// retransmissions make the protocol self-stabilizing against drops.
#[derive(Debug, Clone)]
struct Elector {
    id: u64,
    succ: usize,
    max_seen: u64,
    rounds_left: u32,
}

const ELECT_PERIOD: u64 = 3;

impl Process<u64> for Elector {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        self.max_seen = self.id;
        ctx.set_timer(ELECT_PERIOD, 0);
    }

    fn on_message(&mut self, _from: usize, msg: u64, _ctx: &mut Context<u64>) {
        self.max_seen = self.max_seen.max(msg);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<u64>) {
        ctx.send(self.succ, self.max_seen);
        self.rounds_left -= 1;
        if self.rounds_left > 0 {
            ctx.set_timer(ELECT_PERIOD, 0);
        }
    }
}

fn election_run(n: usize, drop_rate: f64, seed: u64) -> (netsim::Stats, bool) {
    // Ids are a fixed permutation of 0..n (37 is odd, n is a power of two),
    // so the winner sits at an arbitrary ring position.
    let rounds = 2 * n as u32;
    let procs: Vec<Elector> = (0..n)
        .map(|i| Elector {
            id: ((i as u64) * 37 + 5) % n as u64,
            succ: (i + 1) % n,
            max_seen: 0,
            rounds_left: rounds,
        })
        .collect();
    let mut net = Network::with_seed(procs, Latency::Fixed(1), seed);
    net.set_faults(FaultPlan::lossy(drop_rate));
    net.run_until_quiet(ELECT_PERIOD * u64::from(rounds) + 100);
    let max_id = n as u64 - 1;
    let elected = (0..n).all(|i| net.process(i).max_seen == max_id);
    (net.stats().clone(), elected)
}

fn bench_election() {
    for (n, drop_rate) in [(128usize, 0.10), (1024, 0.05)] {
        let t = std::time::Instant::now();
        let (stats, elected) = election_run(n, drop_rate, 7);
        let secs = t.elapsed().as_secs_f64();
        assert!(
            elected,
            "ring-{n}: every node must learn the global max id despite {drop_rate} loss"
        );
        assert!(stats.messages_dropped > 0, "the loss plan must bite");

        // Same-seed determinism under faults (acceptance criterion).
        let (again, _) = election_run(n, drop_rate, 7);
        assert_eq!(stats, again, "ring-{n}: same seed, same Stats");

        println!(
            "{:>16} election: {} sent, {} dropped, leader learned everywhere ({secs:.2}s)",
            format!("ring-{n}"),
            stats.messages_sent,
            stats.messages_dropped,
        );
        println!(
            "BENCH {{\"bench\":\"e18\",\"family\":\"election\",\"n\":{n},\"drop_rate\":{drop_rate},\"sent\":{},\"dropped\":{},\"delivered\":{},\"elected\":true,\"deterministic\":true,\"secs\":{secs:.3}}}",
            stats.messages_sent, stats.messages_dropped, stats.messages_delivered,
        );
    }
}

/// A relay chain: node 0 emits an increasing sequence, every node forwards
/// to its right neighbour, the last node records arrivals. Survives a
/// scheduled partition (heals) and a crash/restart of a middle relay
/// (`on_restart` re-arms nothing — relays are stateless forwarders — but
/// counts the event).
#[derive(Debug, Clone, Default)]
struct ChainNode {
    next: Option<usize>,
    emit: u64, // how many seqs node 0 still emits
    seq: u64,
    got: Vec<u64>,
    restarts: u64,
}

const CHAIN_PERIOD: u64 = 10;

impl Process<u64> for ChainNode {
    fn on_start(&mut self, ctx: &mut Context<u64>) {
        if ctx.me() == 0 && self.emit > 0 {
            ctx.set_timer(CHAIN_PERIOD, 0);
        }
    }

    fn on_message(&mut self, _from: usize, msg: u64, ctx: &mut Context<u64>) {
        match self.next {
            Some(next) => ctx.send(next, msg),
            None => self.got.push(msg),
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Context<u64>) {
        self.seq += 1;
        ctx.send(1, self.seq);
        if self.seq < self.emit {
            ctx.set_timer(CHAIN_PERIOD, 0);
        }
    }

    fn on_restart(&mut self, _ctx: &mut Context<u64>) {
        self.restarts += 1;
    }
}

fn chain_run(n: usize, total: u64) -> (netsim::Stats, Vec<u64>, u64) {
    let procs: Vec<ChainNode> = (0..n)
        .map(|i| ChainNode {
            next: (i + 1 < n).then_some(i + 1),
            emit: if i == 0 { total } else { 0 },
            ..ChainNode::default()
        })
        .collect();
    let mut net = Network::with_seed(procs, Latency::Fixed(1), 11);
    // Right half partitioned off for 150 ticks, then heals; relay 20
    // crashes later and restarts 70 ticks on.
    let island: Vec<usize> = (n / 2..n).collect();
    net.set_faults(
        FaultPlan::none()
            .partition(island, 150, 300)
            .crash_restart(20, 350, 420),
    );
    net.run_until_quiet(20_000);
    let restarts = net.process(20).restarts;
    (
        net.stats().clone(),
        net.process(n - 1).got.clone(),
        restarts,
    )
}

fn bench_chain() {
    let (n, total) = (64usize, 60u64);
    let t = std::time::Instant::now();
    let (stats, got, restarts) = chain_run(n, total);
    let secs = t.elapsed().as_secs_f64();

    assert_eq!(restarts, 1, "on_restart must run exactly once");
    assert_eq!(stats.crash_events, 1);
    assert_eq!(stats.restarts, 1);
    assert!(
        stats.messages_dropped > 0,
        "blackout-era sequence numbers must be lost"
    );
    // Arrivals stay in order (FIFO per link, no reorder windows here)...
    assert!(got.windows(2).all(|w| w[0] < w[1]), "chain must stay FIFO");
    // ...the blackout actually cost us traffic, and post-heal traffic flows:
    // the final sequence number is emitted long after every fault window.
    assert!(
        got.len() < total as usize,
        "some seqs must be lost: {got:?}"
    );
    assert_eq!(got.last(), Some(&total), "post-heal traffic must flow");

    // Bit-reproducibility of the whole run, inbox included.
    let (s2, g2, r2) = chain_run(n, total);
    assert_eq!((&stats, &got, restarts), (&s2, &g2, r2));

    println!(
        "{:>16} chain: {}/{total} seqs delivered through partition+crash, \
         {} dropped, 1 restart ({secs:.2}s)",
        format!("chain-{n}"),
        got.len(),
        stats.messages_dropped,
    );
    println!(
        "BENCH {{\"bench\":\"e18\",\"family\":\"relay-chain\",\"n\":{n},\"emitted\":{total},\"delivered\":{},\"dropped\":{},\"crash_events\":{},\"restarts\":{},\"deterministic\":true,\"secs\":{secs:.3}}}",
        got.len(),
        stats.messages_dropped,
        stats.crash_events,
        stats.restarts,
    );
}

fn bench_anomaly() {
    // Graham's anomaly: every job gets faster, the greedy schedule gets
    // slower — while the deterministic (partitioned) schedule is monotone.
    let shop = JobShop::graham();
    let out = anomaly_experiment(&shop, 1);
    assert!(
        out.anomalous,
        "speeding every job up must lengthen the greedy makespan: {out:?}"
    );
    let det_wcet = partitioned_makespan(&shop);
    let det_faster = partitioned_makespan(&shop.speed_up(1));
    assert!(
        det_faster <= det_wcet,
        "the deterministic schedule must be time-robust"
    );
    println!(
        "{:>16} anomaly: greedy {} -> {} (anomalous), partitioned {} -> {} (robust)",
        "graham", out.makespan_wcet, out.makespan_faster, det_wcet, det_faster,
    );
    println!(
        "BENCH {{\"bench\":\"e18\",\"family\":\"anomaly\",\"system\":\"graham\",\"makespan_wcet\":{},\"makespan_faster\":{},\"anomalous\":true,\"partitioned_wcet\":{det_wcet},\"partitioned_faster\":{det_faster},\"robust\":true}}",
        out.makespan_wcet, out.makespan_faster,
    );
}

fn table() {
    println!("\nE18: resilience under injected faults");
    println!(
        "(crash-recovery philosophers refuted unbounded / proved budgeted; \
         adversarial netsim families; Graham anomaly counterpoint)\n"
    );
    bench_model_refutation();
    bench_model_proof();
    bench_election();
    bench_chain();
    bench_anomaly();
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e18");
    g.sample_size(10);

    // Transform cost: fault-inject a 16-philosopher table.
    let base = bip_core::dining_philosophers(16, false).unwrap();
    let spec = FaultSpec::crash_all()
        .recover(RecoverSpec::Restart)
        .budget(1);
    g.bench_with_input(BenchmarkId::new("inject_phil", 16), &base, |b, sys| {
        b.iter(|| fault::inject(sys, &spec).unwrap().num_components())
    });

    // Proof cost on the budgeted variant.
    let saved = crash_recovery_philosophers(PHIL_N, Some(1), RecoverSpec::Restart);
    let inv = fault::single_fault_invariant(&saved);
    g.bench_with_input(
        BenchmarkId::new("kind_crash_phil", PHIL_N),
        &saved,
        |b, sys| {
            b.iter(|| {
                KindConfig::new(sys)
                    .max_k(4)
                    .prove(&inv)
                    .unwrap()
                    .is_proved()
            })
        },
    );

    // Lossy election end-to-end at the small size.
    g.bench_function(BenchmarkId::new("election", 128), |b| {
        b.iter(|| election_run(128, 0.10, 7).1)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
