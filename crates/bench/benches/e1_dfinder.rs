//! E1 — "D-Finder can run exponentially faster than existing monolithic
//! verification tools, such as NuSMV" (§5.6).
//!
//! Regenerates the comparison on the dining-philosophers family: monolithic
//! explicit-state search visits an exponentially growing state space while
//! the compositional check works on a linear abstraction. The printed table
//! reports state counts (shape of the claim, independent of machine); the
//! Criterion measurements report wall-clock for both methods.

use bip_core::dining_philosophers;
use bip_verify::reach::explore;
use bip_verify::DFinder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn table() {
    println!("\nE1: monolithic vs compositional deadlock-freedom (conservative philosophers)");
    println!(
        "{:>3} {:>14} {:>14} {:>10} {:>8} {:>8} {:>12}",
        "n", "mono states", "mono trans", "abs places", "traps", "linear", "verdict"
    );
    for n in 2..=9 {
        let sys = dining_philosophers(n, false).unwrap();
        let mono = explore(&sys, 10_000_000);
        let df = DFinder::new(&sys);
        let rep = df.check_deadlock_freedom();
        println!(
            "{:>3} {:>14} {:>14} {:>10} {:>8} {:>8} {:>12}",
            n,
            mono.states,
            mono.transitions,
            rep.places,
            rep.traps,
            rep.linear_invariants,
            if rep.verdict.is_deadlock_free() {
                "df-free"
            } else {
                "potential"
            },
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e1");
    g.sample_size(10);
    for n in [4usize, 6, 8] {
        let sys = dining_philosophers(n, false).unwrap();
        g.bench_with_input(BenchmarkId::new("monolithic", n), &sys, |b, sys| {
            b.iter(|| explore(sys, 10_000_000).states)
        });
        g.bench_with_input(BenchmarkId::new("dfinder", n), &sys, |b, sys| {
            b.iter(|| {
                DFinder::new(sys)
                    .check_deadlock_freedom()
                    .verdict
                    .is_deadlock_free()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
