//! E9 — architectures and their composition (§5.5.2, [4]): cost of applying
//! and model-checking reference architectures and of the ⊕ composition.

use bip_arch::{client_critical, clients, compose, fifo_scheduler, mutual_exclusion, token_ring};
use bip_verify::reach::{check_invariant, explore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn table() {
    println!("\nE9: architecture application + verification (clients n)");
    println!(
        "{:>3} {:<14} {:>8} {:>10} {:>9}",
        "n", "architecture", "states", "prop holds", "df-free"
    );
    for n in [2usize, 3, 4, 5] {
        let base = clients(n);
        for arch in [
            mutual_exclusion(client_critical(n)),
            token_ring(client_critical(n)),
        ] {
            let sys = arch.apply(&base).unwrap();
            let prop = arch.characteristic_property(&sys);
            let inv = check_invariant(&sys, &prop, 2_000_000);
            let reach = explore(&sys, 2_000_000);
            println!(
                "{:>3} {:<14} {:>8} {:>10} {:>9}",
                n,
                arch.name,
                reach.states,
                inv.holds(),
                reach.deadlock_free()
            );
        }
        // ⊕ composition.
        let m = mutual_exclusion(client_critical(n));
        let f = fifo_scheduler(client_critical(n));
        let sys = compose(&base, &m, &f).unwrap();
        let ok = check_invariant(&sys, &m.characteristic_property(&sys), 2_000_000).holds()
            && check_invariant(&sys, &f.characteristic_property(&sys), 2_000_000).holds();
        println!(
            "{:>3} {:<14} {:>8} {:>10} {:>9}",
            n,
            "mutex⊕fifo",
            explore(&sys, 2_000_000).states,
            ok,
            explore(&sys, 2_000_000).deadlock_free()
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e9");
    g.sample_size(10);
    for n in [3usize, 5] {
        let base = clients(n);
        g.bench_with_input(BenchmarkId::new("apply_and_check_mutex", n), &n, |b, &n| {
            b.iter(|| {
                let arch = mutual_exclusion(client_critical(n));
                let sys = arch.apply(&base).unwrap();
                check_invariant(&sys, &arch.characteristic_property(&sys), 2_000_000).holds()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
