//! E11 — packed-state parallel reachability vs. the PR-1 sequential
//! explorer, on the philosophers family (§4.3's state-explosion experiment,
//! E1), a randomized ring family, and the **var-heavy counter-ring family**
//! (token ring with per-node bounded counters) that stresses the adaptive
//! codec.
//!
//! The PR-1 baseline stores every visited global state as a heap-backed
//! `State` in a single-threaded `HashMap` and allocates a fresh `State` and
//! `Step` per expanded edge. The new engine bit-packs states through
//! `StateCodec` — by default the *adaptive* codec (per-variable inferred
//! widths + interned overflow) — keeps the seen set in open-addressing
//! tables over per-shard bump arenas, explores with a sharded
//! level-synchronous BFS (`ReachConfig::threads`), and enumerates
//! successors allocation-free.
//!
//! For every system the table prints throughput (states/s), speedup over
//! the baseline, packed widths, and the **measured** stored bytes/state of
//! the seen set under the full-width and adaptive codecs (a `BENCH {...}`
//! JSON line per system records the footprint trajectory for CI to track).
//! Reports are asserted identical across all engines, thread counts, *and
//! codecs* on every system measured; on the counter-ring family the
//! adaptive codec must store at least 3× fewer bytes per state than the
//! full-width codec, and on the philosophers family it must not regress —
//! both asserted here, so the CI bench smoke enforces them.
//!
//! Thread counts default to `1,2,4`; override with `--threads 1,4,8` (or
//! the `E11_THREADS` environment variable).

use bench::{counter_ring, pr1_explore, thread_counts};
use bip_core::{
    dining_philosophers, AtomBuilder, ConnectorBuilder, Expr, State, StateCodec, System,
    SystemBuilder,
};
use bip_verify::reach::{explore_with, ReachConfig, ReachReport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const BOUND: usize = 2_000_000;

/// Randomized ring family: `n` atoms with 3 locations and a mod-3 counter,
/// rendezvous-linked in a ring. Every location offers both ring ports (so
/// the ring keeps synchronizing) with randomized targets, guards, and
/// counter updates — finite state spaces of tens of thousands of states,
/// shaped by the seed.
fn random_ring(seed: u64, n: usize) -> System {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move |m: u64| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng % m
    };
    let mut sb = SystemBuilder::new();
    for i in 0..n {
        let mut b = AtomBuilder::new(format!("t{i}"))
            .var("v", next(3) as i64)
            .port("left")
            .port("right")
            .location("l0")
            .location("l1")
            .location("l2")
            .initial("l0");
        for l in 0..3 {
            for port in ["left", "right"] {
                let to = format!("l{}", next(3));
                let guard = if next(4) == 0 {
                    Expr::var(0).lt(Expr::int(2))
                } else {
                    Expr::t()
                };
                let updates = if next(2) == 0 {
                    vec![("v", Expr::var(0).add(Expr::int(1)).rem(Expr::int(3)))]
                } else {
                    vec![]
                };
                b = b.guarded_transition(format!("l{l}"), port, guard, updates, to);
            }
        }
        let ty = b.build().unwrap();
        sb.add_instance(format!("a{i}"), &ty);
    }
    for i in 0..n {
        sb.add_connector(ConnectorBuilder::rendezvous(
            format!("link{i}"),
            [(i, "right"), ((i + 1) % n, "left")],
        ));
    }
    sb.build().unwrap()
}

/// Estimated bytes one stored state costs in the PR-1 `seen` set (struct
/// plus both heap buffers; hash-table overhead excluded on both sides).
fn state_bytes(sys: &System) -> usize {
    let st = sys.initial_state();
    std::mem::size_of::<State>() + st.locs.capacity() * 4 + st.vars.capacity() * 8
}

fn assert_same(a: &ReachReport, b: &ReachReport, ctx: &str) {
    assert_eq!(a.states, b.states, "{ctx}: states");
    assert_eq!(a.transitions, b.transitions, "{ctx}: transitions");
    assert_eq!(a.complete, b.complete, "{ctx}: complete");
    let da: std::collections::HashSet<&State> = a.deadlocks.iter().collect();
    let db: std::collections::HashSet<&State> = b.deadlocks.iter().collect();
    assert_eq!(da, db, "{ctx}: deadlock set");
}

/// Footprint floor the adaptive codec must clear over the full-width codec
/// (stored bytes/state ratio); `None` means "must not regress".
fn bench_system(name: &str, sys: &System, threads: &[usize], min_shrink: Option<f64>) {
    let t = std::time::Instant::now();
    let base = pr1_explore(sys, BOUND);
    let base_secs = t.elapsed().as_secs_f64();
    let full_codec = StateCodec::new(sys);
    let ad_codec = StateCodec::adaptive(sys);
    let sb = state_bytes(sys);
    println!(
        "{name:>14} {:>9} states  {:>10.0} st/s (PR-1)   {sb:>4} B/state heap",
        base.states,
        base.states as f64 / base_secs,
    );

    // Full-width reference run: the report every adaptive run must equal,
    // and the footprint baseline the adaptive codec is measured against.
    let full = explore_with(sys, &ReachConfig::bounded(BOUND).full_width_codec());
    if base.complete {
        assert_same(&full, &base, name);
    }

    let mut first: Option<ReachReport> = None;
    let mut best = (0usize, 0.0f64);
    for &th in threads {
        let t = std::time::Instant::now();
        let r = explore_with(sys, &ReachConfig::bounded(BOUND).threads(th));
        let secs = t.elapsed().as_secs_f64();
        // The new engine is thread-count and codec invariant, bounded or
        // not; the PR-1 baseline is only comparable edge-for-edge on
        // complete runs (its historical bound semantics counted pruned
        // edges).
        match &first {
            None => {
                assert_same(&r, &full, name);
                first = Some(r.clone());
            }
            Some(f) => {
                assert_same(&r, f, name);
                assert_eq!(r.stored_bytes, f.stored_bytes, "{name}: footprint");
            }
        }
        let speedup = base_secs / secs;
        if speedup > best.1 {
            best = (th, speedup);
        }
        println!(
            "{:>14} {:>9} states  {:>10.0} st/s   speedup {:>5.2}x",
            format!("threads={th}"),
            r.states,
            r.states as f64 / secs,
            speedup
        );
    }

    let ad = first.expect("at least one thread count measured");
    let (fb, ab) = (full.bytes_per_state(), ad.bytes_per_state());
    let shrink = fb / ab.max(f64::MIN_POSITIVE);
    println!(
        "{:>14} {:.2}x at threads={}   codec {}b -> {}b packed   seen {:.1} -> {:.1} B/state ({shrink:.1}x)",
        "best:",
        best.1,
        best.0,
        full_codec.bits(),
        ad_codec.bits(),
        fb,
        ab,
    );
    // One scrape-friendly record per system so the footprint trajectory
    // lands in the CI logs next to criterion's estimates.json.
    println!(
        "BENCH {{\"bench\":\"e11\",\"system\":\"{name}\",\"states\":{},\"full_bits\":{},\"adaptive_bits\":{},\"full_bytes_per_state\":{fb:.2},\"adaptive_bytes_per_state\":{ab:.2},\"shrink\":{shrink:.2},\"wall_ms\":{:.1},\"peak_bytes\":{},\"stop\":\"{:?}\"}}",
        ad.states,
        full_codec.bits(),
        ad_codec.bits(),
        ad.elapsed.as_secs_f64() * 1e3,
        ad.peak_bytes,
        ad.stop,
    );
    match min_shrink {
        Some(f) => assert!(
            ab * f <= fb,
            "{name}: adaptive codec must store >= {f}x fewer bytes/state \
             (full {fb:.1}, adaptive {ab:.1})"
        ),
        None => assert!(
            ab <= fb + 1e-9,
            "{name}: adaptive codec must never regress the footprint \
             (full {fb:.1}, adaptive {ab:.1})"
        ),
    }
}

fn table() {
    let threads = thread_counts("E11_THREADS", &[1, 2, 4]);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nE11: packed-state parallel reachability vs PR-1 sequential explore");
    println!("(threads tested: {threads:?}; override with --threads a,b,c)");
    println!("(host parallelism: {cores} — thread counts beyond it add overhead, not speed)\n");
    for n in [10usize, 12, 13] {
        let sys = dining_philosophers(n, true).unwrap();
        bench_system(&format!("phil-{n}"), &sys, &threads, None);
    }
    for (n, seed) in [(6usize, 23u64), (7, 41)] {
        let sys = random_ring(seed, n);
        bench_system(&format!("ring-{n}/s{seed}"), &sys, &threads, None);
    }
    // Var-heavy family: the ROADMAP case the adaptive codec exists for.
    // Per-node counters dominate the footprint, so the acceptance floor is
    // a hard 3x shrink over the full-width codec.
    for (n, k) in [(6usize, 4i64), (7, 3)] {
        let sys = counter_ring(n, k);
        bench_system(&format!("cring-{n}x{k}"), &sys, &threads, Some(3.0));
    }
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let threads = thread_counts("E11_THREADS", &[1, 2, 4]);
    let mut g = c.benchmark_group("e11");
    g.sample_size(10);
    let sys = dining_philosophers(12, true).unwrap();
    g.bench_with_input(BenchmarkId::new("pr1_sequential", 12), &sys, |b, sys| {
        b.iter(|| pr1_explore(sys, BOUND).states)
    });
    for &th in &threads {
        g.bench_with_input(
            BenchmarkId::new(format!("packed_threads_{th}"), 12),
            &sys,
            |b, sys| b.iter(|| explore_with(sys, &ReachConfig::bounded(BOUND).threads(th)).states),
        );
    }
    // Var-heavy counter ring: adaptive vs full-width codec throughput (the
    // narrow states are also the cache-friendlier ones).
    let cring = counter_ring(6, 4);
    g.bench_with_input(
        BenchmarkId::new("cring_full_width", "6x4"),
        &cring,
        |b, sys| {
            b.iter(|| explore_with(sys, &ReachConfig::bounded(BOUND).full_width_codec()).states)
        },
    );
    g.bench_with_input(
        BenchmarkId::new("cring_adaptive", "6x4"),
        &cring,
        |b, sys| b.iter(|| explore_with(sys, &ReachConfig::bounded(BOUND)).states),
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
