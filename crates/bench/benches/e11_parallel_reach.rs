//! E11 — packed-state parallel reachability vs. the PR-1 sequential
//! explorer, on the philosophers family (§4.3's state-explosion experiment,
//! E1) and a randomized ring family.
//!
//! The PR-1 baseline stores every visited global state as a heap-backed
//! `State` in a single-threaded `HashMap` and allocates a fresh `State` and
//! `Step` per expanded edge. The new engine bit-packs states through
//! `StateCodec`, explores with a sharded level-synchronous BFS
//! (`ReachConfig::threads`), and enumerates successors allocation-free.
//! The table prints throughput (states/s), speedup over the baseline, and
//! the estimated per-state footprint of the `seen` set; reports are
//! asserted identical across all engines on every system measured.
//!
//! Thread counts default to `1,2,4`; override with `--threads 1,4,8` (or
//! the `E11_THREADS` environment variable).

use bench::pr1_explore;
use bip_core::{
    dining_philosophers, AtomBuilder, ConnectorBuilder, Expr, State, StateCodec, System,
    SystemBuilder,
};
use bip_verify::reach::{explore_with, ReachConfig, ReachReport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const BOUND: usize = 2_000_000;

/// Thread counts under test: `--threads 1,4,8` > `E11_THREADS` > `1,2,4`.
fn thread_counts() -> Vec<usize> {
    let from_args = std::env::args()
        .skip_while(|a| a != "--threads")
        .nth(1)
        .or_else(|| std::env::var("E11_THREADS").ok());
    let parsed: Vec<usize> = from_args
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_default();
    if parsed.is_empty() {
        vec![1, 2, 4]
    } else {
        parsed
    }
}

/// Randomized ring family: `n` atoms with 3 locations and a mod-3 counter,
/// rendezvous-linked in a ring. Every location offers both ring ports (so
/// the ring keeps synchronizing) with randomized targets, guards, and
/// counter updates — finite state spaces of tens of thousands of states,
/// shaped by the seed.
fn random_ring(seed: u64, n: usize) -> System {
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move |m: u64| {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng % m
    };
    let mut sb = SystemBuilder::new();
    for i in 0..n {
        let mut b = AtomBuilder::new(format!("t{i}"))
            .var("v", next(3) as i64)
            .port("left")
            .port("right")
            .location("l0")
            .location("l1")
            .location("l2")
            .initial("l0");
        for l in 0..3 {
            for port in ["left", "right"] {
                let to = format!("l{}", next(3));
                let guard = if next(4) == 0 {
                    Expr::var(0).lt(Expr::int(2))
                } else {
                    Expr::t()
                };
                let updates = if next(2) == 0 {
                    vec![("v", Expr::var(0).add(Expr::int(1)).rem(Expr::int(3)))]
                } else {
                    vec![]
                };
                b = b.guarded_transition(format!("l{l}"), port, guard, updates, to);
            }
        }
        let ty = b.build().unwrap();
        sb.add_instance(format!("a{i}"), &ty);
    }
    for i in 0..n {
        sb.add_connector(ConnectorBuilder::rendezvous(
            format!("link{i}"),
            [(i, "right"), ((i + 1) % n, "left")],
        ));
    }
    sb.build().unwrap()
}

/// Estimated bytes one stored state costs in the PR-1 `seen` set (struct
/// plus both heap buffers; hash-table overhead excluded on both sides).
fn state_bytes(sys: &System) -> usize {
    let st = sys.initial_state();
    std::mem::size_of::<State>() + st.locs.capacity() * 4 + st.vars.capacity() * 8
}

fn assert_same(a: &ReachReport, b: &ReachReport, ctx: &str) {
    assert_eq!(a.states, b.states, "{ctx}: states");
    assert_eq!(a.transitions, b.transitions, "{ctx}: transitions");
    assert_eq!(a.complete, b.complete, "{ctx}: complete");
    let da: std::collections::HashSet<&State> = a.deadlocks.iter().collect();
    let db: std::collections::HashSet<&State> = b.deadlocks.iter().collect();
    assert_eq!(da, db, "{ctx}: deadlock set");
}

fn bench_system(name: &str, sys: &System, threads: &[usize]) {
    let t = std::time::Instant::now();
    let base = pr1_explore(sys, BOUND);
    let base_secs = t.elapsed().as_secs_f64();
    let codec = StateCodec::new(sys);
    let sb = state_bytes(sys);
    let pb = codec.packed_bytes();
    println!(
        "{name:>14} {:>9} states  {:>10.0} st/s (PR-1)   {sb:>4} B/state -> {pb:>3} B packed ({:.1}x)",
        base.states,
        base.states as f64 / base_secs,
        sb as f64 / pb as f64
    );
    let mut first: Option<ReachReport> = None;
    let mut best = (0usize, 0.0f64);
    for &th in threads {
        let t = std::time::Instant::now();
        let r = explore_with(sys, &ReachConfig::bounded(BOUND).threads(th));
        let secs = t.elapsed().as_secs_f64();
        // The new engine is thread-count invariant, bounded or not; the
        // PR-1 baseline is only comparable edge-for-edge on complete runs
        // (its historical bound semantics counted pruned edges).
        match &first {
            None => {
                if base.complete {
                    assert_same(&r, &base, name);
                }
                first = Some(r.clone());
            }
            Some(f) => assert_same(&r, f, name),
        }
        let speedup = base_secs / secs;
        if speedup > best.1 {
            best = (th, speedup);
        }
        println!(
            "{:>14} {:>9} states  {:>10.0} st/s   speedup {:>5.2}x",
            format!("threads={th}"),
            r.states,
            r.states as f64 / secs,
            speedup
        );
    }
    println!("{:>14} {:.2}x at threads={}", "best:", best.1, best.0);
}

fn table() {
    let threads = thread_counts();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\nE11: packed-state parallel reachability vs PR-1 sequential explore");
    println!("(threads tested: {threads:?}; override with --threads a,b,c)");
    println!("(host parallelism: {cores} — thread counts beyond it add overhead, not speed)\n");
    for n in [10usize, 12, 13] {
        let sys = dining_philosophers(n, true).unwrap();
        bench_system(&format!("phil-{n}"), &sys, &threads);
    }
    for (n, seed) in [(6usize, 23u64), (7, 41)] {
        let sys = random_ring(seed, n);
        bench_system(&format!("ring-{n}/s{seed}"), &sys, &threads);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    table();
    let sys = dining_philosophers(12, true).unwrap();
    let threads = thread_counts();
    let mut g = c.benchmark_group("e11");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("pr1_sequential", 12), &sys, |b, sys| {
        b.iter(|| pr1_explore(sys, BOUND).states)
    });
    for &th in &threads {
        g.bench_with_input(
            BenchmarkId::new(format!("packed_threads_{th}"), 12),
            &sys,
            |b, sys| b.iter(|| explore_with(sys, &ReachConfig::bounded(BOUND).threads(th)).states),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
