//! E5 — Fig. 5.3: the unit-delay timed automaton; "the number of states and
//! clocks ... increases linearly with the maximum number of changes allowed
//! for x in one time unit".

use bip_rt::{DelayAutomaton, Edge};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn table() {
    println!("\nE5: unit-delay automaton size vs admissible changes per unit (k)");
    println!("{:>4} {:>10} {:>8}", "k", "locations", "clocks");
    for k in [1usize, 2, 4, 8, 16, 32] {
        let d = DelayAutomaton::new(k);
        println!("{:>4} {:>10} {:>8}", k, d.num_locations(), d.num_clocks());
    }
    println!();
}

fn drive(k: usize, edges: usize) -> bool {
    let mut d = DelayAutomaton::new(k);
    let mut t = 0u64;
    let mut v = false;
    for _ in 0..edges {
        t += DelayAutomaton::UNIT / k as u64 + 13;
        v = !v;
        d.input(Edge { time: t, value: v }).unwrap();
        d.sample(t + 5);
    }
    d.sample(t + 2 * DelayAutomaton::UNIT)
}

fn bench(c: &mut Criterion) {
    table();
    let mut g = c.benchmark_group("e5");
    for k in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("drive_200_edges", k), &k, |b, &k| {
            b.iter(|| drive(k, 200))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
