//! `bip-arch` — architectures as first-class operators (§5.5.2).
//!
//! "An architecture is a context `A(n)[X] = gl(n)(X, D(n))`, where `gl(n)`
//! is a glue operator and `D(n)` a set of coordinating components, with a
//! characteristic property `P(n)`" that (1) preserves deadlock-freedom and
//! the invariants of the coordinated components and (2) enforces `P(n)` on
//! the result.
//!
//! This crate provides:
//!
//! * the [`Architecture`] type — glue pattern + coordinator components +
//!   machine-checkable characteristic property;
//! * a library of reference architectures, "described as executable models
//!   [...], proven correct with respect to their characteristic
//!   properties": [`mutual_exclusion`], [`token_ring`],
//!   [`tmr`] (triple modular redundancy with a voter), and
//!   [`fifo_scheduler`];
//! * architecture **composition** `⊕` ([`compose`]) — applying two
//!   architectures to the same components so both characteristic
//!   properties hold (the lattice construction of \[4\]) — and the partial
//!   order [`at_most_as_permissive`] on applied architectures.
//!
//! Every constructor ships with tests that model-check the characteristic
//! property and the preservation clauses with `bip-verify` — horizontal
//! correctness by construction, validated rather than assumed.

use bip_core::{
    AtomBuilder, AtomType, ConnId, Connector, ConnectorBuilder, ModelError, StatePred, System,
    SystemBuilder,
};

/// The endpoints an architecture needs from each coordinated component:
/// `(component index, port name)` lists per role.
pub type PortSpec = Vec<(usize, String)>;

/// An architecture: coordinator components + connector patterns over the
/// coordinated components and the coordinators, + characteristic property.
///
/// Apply with [`Architecture::apply`]; the property is produced by
/// [`Architecture::characteristic_property`] once the target system exists.
pub struct Architecture {
    /// Name (for diagnostics).
    pub name: String,
    /// Coordinator components `D(n)`, instantiated fresh at application.
    pub coordinators: Vec<(String, AtomType)>,
    /// Connector builder: given the base component count and the indices of
    /// the fresh coordinators, produce the glue connectors.
    #[allow(clippy::type_complexity)]
    pub connectors: Box<dyn Fn(&[usize]) -> Vec<Connector>>,
    /// Characteristic property builder (evaluated on the applied system).
    #[allow(clippy::type_complexity)]
    pub property: Box<dyn Fn(&System) -> StatePred>,
}

impl std::fmt::Debug for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Architecture")
            .field("name", &self.name)
            .field("coordinators", &self.coordinators.len())
            .finish()
    }
}

impl Architecture {
    /// Apply the architecture to an existing set of components: rebuilds
    /// the system with the coordinators appended and the architecture's
    /// connectors added.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the generated connectors do not validate
    /// against the components.
    pub fn apply(&self, base: &System) -> Result<System, ModelError> {
        let mut sb = SystemBuilder::new();
        for c in 0..base.num_components() {
            sb.add_instance(base.instance_name(c).to_string(), base.atom_type(c));
        }
        let mut coord_indices = Vec::new();
        for (name, ty) in &self.coordinators {
            coord_indices.push(sb.add_instance(format!("{}/{}", self.name, name), ty));
        }
        for conn in base.connectors() {
            sb.add_connector(conn.clone());
        }
        for conn in (self.connectors)(&coord_indices) {
            sb.add_connector(conn);
        }
        sb.set_priority(base.priority().clone());
        sb.build()
    }

    /// The characteristic property, for an applied system.
    pub fn characteristic_property(&self, applied: &System) -> StatePred {
        (self.property)(applied)
    }
}

/// Mutual exclusion over `critical` = `(component, enter-port, leave-port,
/// critical-location)` tuples: a one-token coordinator serializes entry —
/// the paper's canonical emergent property ("mutual exclusion on a set of
/// tasks cannot be inferred from individual properties of the tasks").
pub fn mutual_exclusion(critical: Vec<(usize, String, String, String)>) -> Architecture {
    let token = AtomBuilder::new("mutex-token")
        .port("acquire")
        .port("release")
        .location("free")
        .location("held")
        .initial("free")
        .transition("free", "acquire", "held")
        .transition("held", "release", "free")
        .build()
        .expect("mutex coordinator");
    let crit = critical.clone();
    let crit2 = critical.clone();
    Architecture {
        name: "mutex".to_string(),
        coordinators: vec![("token".to_string(), token)],
        connectors: Box::new(move |coords| {
            let d = coords[0];
            let mut out = Vec::new();
            for (i, (comp, enter, leave, _)) in crit.iter().enumerate() {
                out.push(
                    ConnectorBuilder::rendezvous(
                        format!("enter{i}"),
                        [(*comp, enter.clone()), (d, "acquire".to_string())],
                    )
                    .into_connector(),
                );
                out.push(
                    ConnectorBuilder::rendezvous(
                        format!("leave{i}"),
                        [(*comp, leave.clone()), (d, "release".to_string())],
                    )
                    .into_connector(),
                );
            }
            out
        }),
        property: Box::new(move |sys| {
            StatePred::mutex(sys, crit2.iter().map(|(c, _, _, loc)| (*c, loc.as_str())))
        }),
    }
}

/// Token-ring architecture: entry happens in round-robin component order —
/// a *stronger* coordination than [`mutual_exclusion`] (it sits lower in
/// the architecture lattice; see the `lattice_order` test).
pub fn token_ring(critical: Vec<(usize, String, String, String)>) -> Architecture {
    let n = critical.len();
    // Coordinator: a ring position counter realized as an atom with one
    // location per holder and acquire_i/release_i ports.
    let mut ab = AtomBuilder::new("ring-token");
    for i in 0..n {
        ab = ab.port(format!("acquire{i}")).port(format!("release{i}"));
    }
    for i in 0..n {
        ab = ab.location(format!("at{i}")).location(format!("held{i}"));
    }
    ab = ab.initial("at0");
    for i in 0..n {
        ab = ab.transition(format!("at{i}"), format!("acquire{i}"), format!("held{i}"));
        ab = ab.transition(
            format!("held{i}"),
            format!("release{i}"),
            format!("at{}", (i + 1) % n),
        );
    }
    let ring = ab.build().expect("ring coordinator");
    let crit = critical.clone();
    let crit2 = critical;
    Architecture {
        name: "token-ring".to_string(),
        coordinators: vec![("ring".to_string(), ring)],
        connectors: Box::new(move |coords| {
            let d = coords[0];
            let mut out = Vec::new();
            for (i, (comp, enter, leave, _)) in crit.iter().enumerate() {
                out.push(
                    ConnectorBuilder::rendezvous(
                        format!("enter{i}"),
                        [(*comp, enter.clone()), (d, format!("acquire{i}"))],
                    )
                    .into_connector(),
                );
                out.push(
                    ConnectorBuilder::rendezvous(
                        format!("leave{i}"),
                        [(*comp, leave.clone()), (d, format!("release{i}"))],
                    )
                    .into_connector(),
                );
            }
            out
        }),
        property: Box::new(move |sys| {
            StatePred::mutex(sys, crit2.iter().map(|(c, _, _, loc)| (*c, loc.as_str())))
        }),
    }
}

/// A worker atom for TMR: computes a result (possibly faulty) on `compute`,
/// then offers `vote`.
fn tmr_replica(faulty: bool) -> AtomType {
    AtomBuilder::new(if faulty { "replica-faulty" } else { "replica" })
        .var("out", 0)
        .port("compute")
        .port_exporting("vote", ["out"])
        .location("idle")
        .location("done")
        .initial("idle")
        .guarded_transition(
            "idle",
            "compute",
            bip_core::Expr::t(),
            vec![("out", bip_core::Expr::int(if faulty { 99 } else { 1 }))],
            "done",
        )
        .transition("done", "vote", "idle")
        .build()
        .expect("tmr replica")
}

/// Triple modular redundancy (§5.5.2's fault-tolerant feature (1)): three
/// replicas and a majority voter; the characteristic property is that the
/// voter's accepted value always equals the majority — here checked as
/// "the voter never adopts the minority value" even with one faulty
/// replica.
pub fn tmr() -> (System, StatePred) {
    let voter = AtomBuilder::new("voter")
        .var("a", 0)
        .var("b", 0)
        .var("c", 0)
        .var("result", 1)
        .port_exporting("collect", ["a", "b", "c"])
        .port("decide")
        .location("gather")
        .location("voted")
        .initial("gather")
        .transition("gather", "collect", "voted")
        .guarded_transition(
            "voted",
            "decide",
            bip_core::Expr::t(),
            vec![(
                "result",
                // Majority of (a, b, c): at least two equal values win.
                bip_core::Expr::var(0).eq(bip_core::Expr::var(1)).ite(
                    bip_core::Expr::var(0),
                    bip_core::Expr::var(0)
                        .eq(bip_core::Expr::var(2))
                        .ite(bip_core::Expr::var(0), bip_core::Expr::var(1)),
                ),
            )],
            "gather",
        )
        .build()
        .expect("voter");
    let mut sb = SystemBuilder::new();
    let r1 = sb.add_instance("r1", &tmr_replica(false));
    let r2 = sb.add_instance("r2", &tmr_replica(false));
    let r3 = sb.add_instance("r3", &tmr_replica(true)); // the faulty one
    let v = sb.add_instance("voter", &voter);
    // All replicas compute together.
    sb.add_connector(ConnectorBuilder::rendezvous(
        "compute",
        [(r1, "compute"), (r2, "compute"), (r3, "compute")],
    ));
    // Voting: 4-way rendezvous moving the three outputs into the voter.
    sb.add_connector(
        ConnectorBuilder::rendezvous(
            "vote",
            [(r1, "vote"), (r2, "vote"), (r3, "vote"), (v, "collect")],
        )
        .transfer(3, 0, bip_core::Expr::param(0, 0))
        .transfer(3, 1, bip_core::Expr::param(1, 0))
        .transfer(3, 2, bip_core::Expr::param(2, 0)),
    );
    sb.add_connector(ConnectorBuilder::singleton("decide", v, "decide"));
    let sys = sb.build().expect("tmr system");
    // Characteristic property: the decided result is never the faulty 99.
    let prop = StatePred::Eq(bip_core::GExpr::var(v, 3), bip_core::GExpr::int(1));
    (sys, prop)
}

/// FIFO admission scheduler over `n` clients with `start`/`finish` ports:
/// clients are admitted in arrival order, one at a time (a scheduling
/// policy expressed as an architecture, §5.5.2).
pub fn fifo_scheduler(clients: Vec<(usize, String, String, String)>) -> Architecture {
    // For the FIFO order we reuse the ring coordinator — round-robin is the
    // FIFO of the always-ready client set.
    let mut a = token_ring(clients);
    a.name = "fifo-sched".to_string();
    a
}

/// Architecture composition `⊕`: apply both architectures to the same base
/// system with **interaction fusion** — when both coordinate the same
/// component port, the port synchronizes with *both* coordinators in a
/// single interaction, so each action needs the agreement of every applied
/// architecture. This is the greatest-lower-bound construction of \[4\]: the
/// result satisfies both characteristic properties, or collapses towards
/// the lattice's bottom (deadlock) when the constraints are incompatible.
///
/// # Errors
///
/// Returns [`ModelError`] if the fused connectors fail validation.
pub fn compose(base: &System, a1: &Architecture, a2: &Architecture) -> Result<System, ModelError> {
    let nbase = base.num_components();
    let mut sb = SystemBuilder::new();
    for c in 0..nbase {
        sb.add_instance(base.instance_name(c).to_string(), base.atom_type(c));
    }
    let mut idx1 = Vec::new();
    for (name, ty) in &a1.coordinators {
        idx1.push(sb.add_instance(format!("{}#1/{}", a1.name, name), ty));
    }
    let mut idx2 = Vec::new();
    for (name, ty) in &a2.coordinators {
        idx2.push(sb.add_instance(format!("{}#2/{}", a2.name, name), ty));
    }
    for conn in base.connectors() {
        sb.add_connector(conn.clone());
    }
    let conns1 = (a1.connectors)(&idx1);
    let conns2 = (a2.connectors)(&idx2);
    // Key = the (single) base-component endpoint of an architecture
    // connector; connectors sharing a key are fused.
    let key_of = |c: &Connector| -> Option<(usize, String)> {
        let base_eps: Vec<_> = c.ports.iter().filter(|p| p.component < nbase).collect();
        match base_eps.as_slice() {
            [one] => Some((one.component, one.port.clone())),
            _ => None,
        }
    };
    let mut fused: Vec<Connector> = Vec::new();
    let mut used2 = vec![false; conns2.len()];
    for c1 in &conns1 {
        let k1 = key_of(c1);
        let mut merged = c1.clone();
        if let Some(k1) = &k1 {
            for (j, c2) in conns2.iter().enumerate() {
                if used2[j] {
                    continue;
                }
                if key_of(c2).as_ref() == Some(k1) {
                    // Append c2's coordinator endpoints.
                    merged
                        .ports
                        .extend(c2.ports.iter().filter(|p| p.component >= nbase).cloned());
                    used2[j] = true;
                }
            }
        }
        fused.push(merged);
    }
    for (j, c2) in conns2.into_iter().enumerate() {
        if !used2[j] {
            let mut c2 = c2;
            if fused.iter().any(|c| c.name == c2.name) {
                c2.name = format!("{}:{}", a2.name, c2.name);
            }
            fused.push(c2);
        }
    }
    for c in fused {
        sb.add_connector(c);
    }
    sb.set_priority(base.priority().clone());
    sb.build()
}

/// The lattice order on *applied* architectures (same observable
/// alphabet): `a` is at most as permissive as `b` if every observable
/// trace of `a` is a trace of `b`. Stronger architectures sit lower.
pub fn at_most_as_permissive(a: &System, b: &System, max_states: usize) -> bool {
    let report = bip_verify::refines(b, a, |l: &str| Some(l.to_string()), max_states);
    report.trace_included
}

/// A simple client used by tests and examples: cycles idle → enter →
/// working → leave.
pub fn client() -> AtomType {
    AtomBuilder::new("client")
        .port("enter")
        .port("leave")
        .location("idle")
        .location("working")
        .initial("idle")
        .transition("idle", "enter", "working")
        .transition("working", "leave", "idle")
        .build()
        .expect("client atom")
}

/// Base system of `n` unconnected clients (the raw components an
/// architecture coordinates).
pub fn clients(n: usize) -> System {
    let ty = client();
    let mut sb = SystemBuilder::new();
    for i in 0..n {
        sb.add_instance(format!("c{i}"), &ty);
    }
    // Unconnected components cannot move; architectures will wire them.
    // SystemBuilder requires ≥1 connector? No — but enabled() is empty.
    sb.build().expect("clients")
}

/// Critical-section spec for [`clients`]-shaped systems.
pub fn client_critical(n: usize) -> Vec<(usize, String, String, String)> {
    (0..n)
        .map(|i| {
            (
                i,
                "enter".to_string(),
                "leave".to_string(),
                "working".to_string(),
            )
        })
        .collect()
}

/// Identifier re-export for convenience in examples.
pub fn connector_ids(sys: &System) -> Vec<ConnId> {
    (0..sys.num_connectors() as u32).map(ConnId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_verify::reach::{check_invariant, explore};

    #[test]
    fn mutex_architecture_enforces_its_property() {
        let base = clients(3);
        let arch = mutual_exclusion(client_critical(3));
        let sys = arch.apply(&base).unwrap();
        let prop = arch.characteristic_property(&sys);
        let r = check_invariant(&sys, &prop, 100_000);
        assert!(
            r.holds(),
            "mutex must hold: {:?}",
            r.violation.map(|(s, _)| sys.describe_state(&s))
        );
        // Preservation clause: the application is deadlock-free.
        assert!(explore(&sys, 100_000).deadlock_free());
    }

    #[test]
    fn without_architecture_mutex_fails() {
        // Wire clients directly (each can enter freely): property violated.
        let ty = client();
        let mut sb = SystemBuilder::new();
        let a = sb.add_instance("a", &ty);
        let b = sb.add_instance("b", &ty);
        sb.add_connector(ConnectorBuilder::singleton("ea", a, "enter"));
        sb.add_connector(ConnectorBuilder::singleton("la", a, "leave"));
        sb.add_connector(ConnectorBuilder::singleton("eb", b, "enter"));
        sb.add_connector(ConnectorBuilder::singleton("lb", b, "leave"));
        let sys = sb.build().unwrap();
        let prop = StatePred::mutex(&sys, [(0, "working"), (1, "working")]);
        assert!(!check_invariant(&sys, &prop, 100_000).holds());
    }

    #[test]
    fn token_ring_enforces_mutex_and_order() {
        let base = clients(3);
        let arch = token_ring(client_critical(3));
        let sys = arch.apply(&base).unwrap();
        let prop = arch.characteristic_property(&sys);
        assert!(check_invariant(&sys, &prop, 100_000).holds());
        assert!(explore(&sys, 100_000).deadlock_free());
        // Order: after c0 leaves, the next to enter is c1 (model-checked as
        // "c0 cannot enter twice in a row" via trace refinement below).
    }

    #[test]
    fn lattice_order_ring_below_mutex() {
        let base = clients(2);
        let ring = token_ring(client_critical(2)).apply(&base).unwrap();
        let mutex = mutual_exclusion(client_critical(2)).apply(&base).unwrap();
        assert!(
            at_most_as_permissive(&ring, &mutex, 100_000),
            "round-robin traces are a subset of mutex traces"
        );
        assert!(
            !at_most_as_permissive(&mutex, &ring, 100_000),
            "mutex allows re-entry, the ring does not"
        );
    }

    #[test]
    fn tmr_masks_single_fault() {
        let (sys, prop) = tmr();
        let r = check_invariant(&sys, &prop, 100_000);
        assert!(r.holds(), "the faulty replica must be outvoted");
        assert!(explore(&sys, 100_000).deadlock_free());
    }

    #[test]
    fn composition_preserves_both_properties() {
        // mutex ⊕ fifo-order on the same clients: both characteristic
        // properties hold on the composition.
        let base = clients(2);
        let m = mutual_exclusion(client_critical(2));
        let f = fifo_scheduler(client_critical(2));
        let sys = compose(&base, &m, &f).unwrap();
        let pm = m.characteristic_property(&sys);
        let pf = f.characteristic_property(&sys);
        assert!(check_invariant(&sys, &pm, 200_000).holds());
        assert!(check_invariant(&sys, &pf, 200_000).holds());
        assert!(explore(&sys, 200_000).deadlock_free(), "⊕ stayed above ⊥");
    }

    #[test]
    fn composition_can_hit_bottom() {
        // Two token rings with opposite orders: their conjunction blocks —
        // "the bottom element represents coordination constraints that lead
        // to deadlocked systems and thus do not correspond to
        // architectures".
        let base = clients(2);
        let fwd = token_ring(client_critical(2));
        let mut crit = client_critical(2);
        crit.reverse();
        let bwd = token_ring(crit);
        let sys = compose(&base, &fwd, &bwd).unwrap();
        let r = explore(&sys, 100_000);
        // Entering requires both rings to agree; with opposite start
        // positions they never do for one of the clients — either deadlock
        // or a strictly smaller behavior. Here: deadlock after the common
        // prefix ends.
        assert!(
            !r.deadlock_free() || r.states < explore(&fwd.apply(&base).unwrap(), 100_000).states,
            "opposite rings must collapse the behavior"
        );
    }

    #[test]
    fn preservation_of_component_invariants() {
        // A client is never in a location outside its alphabet — trivially —
        // but the meaningful check: applying mutex does not break a
        // per-component reachability invariant that held before.
        let base = clients(2);
        let arch = mutual_exclusion(client_critical(2));
        let sys = arch.apply(&base).unwrap();
        // In the base system (no connectors) clients sit at idle; in the
        // applied system, "working implies the token is held".
        let inv = StatePred::at(&sys, 0, "working")
            .not()
            .or(StatePred::at(&sys, 2, "held"));
        assert!(check_invariant(&sys, &inv, 100_000).holds());
    }
}
