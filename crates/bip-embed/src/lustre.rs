//! Mini-Lustre: synchronous data-flow programs as systems of recurrence
//! equations (Fig. 5.2's source language).
//!
//! "The meaning of a program is a system of recurrence equations. Programs
//! can be represented as block diagrams consisting of functional nodes that
//! synchronously transform their input data streams into output streams."

/// Index of a node in a [`Program`].
pub type NodeId = usize;

/// A data-flow operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// External input stream (by input index).
    Input(usize),
    /// Constant stream.
    Const(i64),
    /// Pointwise sum of two streams.
    Add(NodeId, NodeId),
    /// Pointwise difference.
    Sub(NodeId, NodeId),
    /// Pointwise product.
    Mul(NodeId, NodeId),
    /// Unit delay with an initial value: `pre(e)` emits `init` at cycle 0
    /// then the argument's previous value. `pre` is the only operator
    /// allowed to close a cycle.
    Pre(i64, NodeId),
}

impl NodeKind {
    /// Combinational dependencies (a `Pre` has none — it reads the past).
    pub fn deps(&self) -> Vec<NodeId> {
        match self {
            NodeKind::Input(_) | NodeKind::Const(_) | NodeKind::Pre(_, _) => Vec::new(),
            NodeKind::Add(a, b) | NodeKind::Sub(a, b) | NodeKind::Mul(a, b) => vec![*a, *b],
        }
    }

    /// The streams this node reads (including through `pre`).
    pub fn reads(&self) -> Vec<NodeId> {
        match self {
            NodeKind::Input(_) | NodeKind::Const(_) => Vec::new(),
            NodeKind::Pre(_, a) => vec![*a],
            NodeKind::Add(a, b) | NodeKind::Sub(a, b) | NodeKind::Mul(a, b) => vec![*a, *b],
        }
    }
}

/// A mini-Lustre program: a block diagram plus designated output nodes.
#[derive(Debug, Clone, Default)]
pub struct Program {
    nodes: Vec<NodeKind>,
    outputs: Vec<NodeId>,
}

impl Program {
    /// Empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Add a node; returns its id.
    pub fn node(&mut self, kind: NodeKind) -> NodeId {
        self.nodes.push(kind);
        self.nodes.len() - 1
    }

    /// Mark a node as an output stream.
    pub fn output(&mut self, id: NodeId) {
        self.outputs.push(id);
    }

    /// The nodes.
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// Output node ids.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of data-flow edges (reads).
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.reads().len()).sum()
    }

    /// A topological order of the combinational graph, or `None` if the
    /// program has a combinational cycle (not well-formed).
    pub fn topo_order(&self) -> Option<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, node) in self.nodes.iter().enumerate() {
            for d in node.deps() {
                indeg[i] += 1;
                out[d].push(i);
            }
        }
        let mut order = Vec::with_capacity(n);
        let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(i) = queue.pop() {
            order.push(i);
            for &j in &out[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Reference interpreter: run `cycles` steps with the given input
    /// streams (indexed by `Input` index). Returns one stream per output.
    ///
    /// # Panics
    ///
    /// Panics on combinational cycles or missing input streams.
    pub fn eval(&self, inputs: &[Vec<i64>], cycles: usize) -> Vec<Vec<i64>> {
        let order = self.topo_order().expect("combinational cycle");
        let n = self.nodes.len();
        let mut value = vec![0i64; n];
        let mut pre_state: Vec<i64> = self
            .nodes
            .iter()
            .map(|k| {
                if let NodeKind::Pre(init, _) = k {
                    *init
                } else {
                    0
                }
            })
            .collect();
        let mut out = vec![Vec::with_capacity(cycles); self.outputs.len()];
        #[allow(clippy::needless_range_loop)] // t is the cycle index across all input streams
        for t in 0..cycles {
            for &i in &order {
                value[i] = match &self.nodes[i] {
                    NodeKind::Input(k) => inputs[*k][t],
                    NodeKind::Const(c) => *c,
                    NodeKind::Add(a, b) => value[*a].wrapping_add(value[*b]),
                    NodeKind::Sub(a, b) => value[*a].wrapping_sub(value[*b]),
                    NodeKind::Mul(a, b) => value[*a].wrapping_mul(value[*b]),
                    NodeKind::Pre(_, _) => pre_state[i],
                };
            }
            for (i, k) in self.nodes.iter().enumerate() {
                if let NodeKind::Pre(_, a) = k {
                    pre_state[i] = value[*a];
                }
            }
            for (oi, &o) in self.outputs.iter().enumerate() {
                out[oi].push(value[o]);
            }
        }
        out
    }

    /// Generate a random well-formed program with `size` operator nodes
    /// over one input (for the size-sweep experiment E4).
    pub fn random(size: usize, seed: u64) -> Program {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = Program::new();
        let input = p.node(NodeKind::Input(0));
        let mut avail = vec![input];
        for _ in 0..size {
            let a = avail[rng.gen_range(0..avail.len())];
            let b = avail[rng.gen_range(0..avail.len())];
            let id = match rng.gen_range(0..4) {
                0 => p.node(NodeKind::Add(a, b)),
                1 => p.node(NodeKind::Sub(a, b)),
                2 => p.node(NodeKind::Mul(a, b)),
                _ => p.node(NodeKind::Pre(rng.gen_range(-3..4), a)),
            };
            avail.push(id);
        }
        p.output(*avail.last().expect("nonempty"));
        p
    }
}

/// The integrator of Fig. 5.2: `Y = X + pre(Y)`.
pub fn integrator() -> Program {
    let mut p = Program::new();
    let x = p.node(NodeKind::Input(0));
    // Forward-declare the cycle through pre: create pre with a placeholder,
    // patch after creating the adder. Mini trick: create pre reading the
    // adder once it exists — the adder id is predictable.
    let pre = p.node(NodeKind::Pre(0, 2)); // node 2 = the adder below
    let y = p.node(NodeKind::Add(x, pre));
    p.output(y);
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrator_streams() {
        let p = integrator();
        let xs = vec![vec![1, 2, 3, 4, 5]];
        let ys = p.eval(&xs, 5);
        assert_eq!(ys[0], vec![1, 3, 6, 10, 15], "running sums (Fig 5.2)");
    }

    #[test]
    fn pre_initial_value() {
        let mut p = Program::new();
        let x = p.node(NodeKind::Input(0));
        let d = p.node(NodeKind::Pre(7, x));
        p.output(d);
        let ys = p.eval(&[vec![1, 2, 3]], 3);
        assert_eq!(ys[0], vec![7, 1, 2]);
    }

    #[test]
    fn arithmetic_nodes() {
        let mut p = Program::new();
        let x = p.node(NodeKind::Input(0));
        let c = p.node(NodeKind::Const(10));
        let s = p.node(NodeKind::Sub(c, x));
        let m = p.node(NodeKind::Mul(s, s));
        p.output(m);
        let ys = p.eval(&[vec![1, 2]], 2);
        assert_eq!(ys[0], vec![81, 64]);
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut p = Program::new();
        let a = p.node(NodeKind::Add(1, 1));
        let _b = p.node(NodeKind::Add(a, a)); // b depends on a; a on b: make a cycle
        let mut p2 = Program::new();
        p2.node(NodeKind::Add(0, 0)); // self-cycle
        assert!(p2.topo_order().is_none());
        assert!(p.topo_order().is_some() || p.topo_order().is_none());
    }

    #[test]
    fn random_programs_are_well_formed() {
        for seed in 0..10 {
            let p = Program::random(20, seed);
            assert!(p.topo_order().is_some(), "seed {seed}");
            let input = vec![(0..30).collect::<Vec<i64>>()];
            let out = p.eval(&input, 30);
            assert_eq!(out[0].len(), 30);
        }
    }

    #[test]
    fn edge_count() {
        let p = integrator();
        // adder reads x and pre (2), pre reads adder (1).
        assert_eq!(p.num_edges(), 3);
    }
}
