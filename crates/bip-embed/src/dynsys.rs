//! Dynamic systems and their laws — Fig. 6.1.
//!
//! The figure contrasts a GCD program, whose reachable states are
//! characterized by the invariant `GCD(x, y) = GCD(x0, y0)`, with a
//! spring–mass system governed by conservation of energy
//! `½k·x0² = ½k·x² + ½m·v²`. Both are realized here: the GCD program as a
//! BIP atom whose invariant is model-checked over the full reachable set,
//! and the spring–mass system as a discrete (semi-implicit Euler)
//! simulation whose energy stays within a drift bound.

use bip_core::{AtomBuilder, ConnectorBuilder, Expr, System, SystemBuilder};

/// Euclid's GCD (for checking the invariant).
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// The GCD program of Fig. 6.1 as a one-atom BIP system:
/// `while x != y { if x > y { x -= y } else { y -= x } }`.
///
/// Internal transitions model the loop body; the system deadlocks exactly
/// when `x == y == GCD(x0, y0)` — termination is reaching the fixed point.
pub fn gcd_system(x0: i64, y0: i64) -> System {
    assert!(x0 > 0 && y0 > 0, "GCD program needs positive inputs");
    let atom = AtomBuilder::new("gcd")
        .var("x", x0)
        .var("y", y0)
        .port("observe")
        .location("loop")
        .initial("loop")
        .internal_transition(
            "loop",
            Expr::var(0).gt(Expr::var(1)),
            vec![("x", Expr::var(0).sub(Expr::var(1)))],
            "loop",
        )
        .internal_transition(
            "loop",
            Expr::var(1).gt(Expr::var(0)),
            vec![("y", Expr::var(1).sub(Expr::var(0)))],
            "loop",
        )
        .build()
        .expect("gcd atom");
    let mut sb = SystemBuilder::new();
    let g = sb.add_instance("g", &atom);
    // An observer port (never connected to anything enabled) keeps the
    // system shape conventional.
    sb.add_connector(
        ConnectorBuilder::singleton("observe", g, "observe")
            .guard(Expr::f())
            .silent(),
    );
    sb.build().expect("gcd system")
}

/// A discrete spring–mass system (semi-implicit Euler, which conserves a
/// shadow energy): position `x`, velocity `v`, spring constant `k`, mass
/// `m`, time step `dt` (all in floating point).
#[derive(Debug, Clone)]
pub struct SpringMass {
    /// Position.
    pub x: f64,
    /// Velocity.
    pub v: f64,
    /// Spring constant.
    pub k: f64,
    /// Mass.
    pub m: f64,
    /// Integration step.
    pub dt: f64,
}

impl SpringMass {
    /// Release from rest at `x0`.
    pub fn released_at(x0: f64, k: f64, m: f64, dt: f64) -> SpringMass {
        SpringMass {
            x: x0,
            v: 0.0,
            k,
            m,
            dt,
        }
    }

    /// Total mechanical energy `½kx² + ½mv²`.
    pub fn energy(&self) -> f64 {
        0.5 * self.k * self.x * self.x + 0.5 * self.m * self.v * self.v
    }

    /// One semi-implicit Euler step.
    pub fn step(&mut self) {
        let a = -self.k / self.m * self.x;
        self.v += a * self.dt;
        self.x += self.v * self.dt;
    }
}

/// Run the spring for `steps` and return the maximum relative energy drift
/// — the executable form of the conservation law in Fig. 6.1.
pub fn spring_mass_energy_drift(mut s: SpringMass, steps: usize) -> f64 {
    let e0 = s.energy();
    let mut worst: f64 = 0.0;
    for _ in 0..steps {
        s.step();
        worst = worst.max((s.energy() - e0).abs() / e0);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::{GExpr, StatePred};
    use bip_verify::reach::{check_invariant, explore};

    #[test]
    fn gcd_invariant_holds_on_all_reachable_states() {
        for (x0, y0) in [(12, 18), (35, 14), (17, 5), (100, 64)] {
            let sys = gcd_system(x0, y0);
            let g = gcd(x0, y0);
            // GCD(x, y) is not expressible in GExpr directly; check the
            // consequence we can express — both variables stay positive
            // multiples of g: x % g == 0 encoded by sweeping the reachable
            // set manually.
            let mut seen = std::collections::HashSet::new();
            let mut queue = std::collections::VecDeque::new();
            let init = sys.initial_state();
            seen.insert(init.clone());
            queue.push_back(init);
            while let Some(st) = queue.pop_front() {
                let x = sys.var_value(&st, 0, 0);
                let y = sys.var_value(&st, 0, 1);
                assert_eq!(gcd(x, y), g, "invariant GCD(x,y)=GCD(x0,y0) violated");
                assert!(x > 0 && y > 0);
                for (_, next) in sys.successors(&st) {
                    if seen.insert(next.clone()) {
                        queue.push_back(next);
                    }
                }
            }
        }
    }

    #[test]
    fn gcd_terminates_at_the_gcd() {
        let sys = gcd_system(12, 18);
        let r = explore(&sys, 10_000);
        assert!(r.complete);
        assert_eq!(
            r.deadlocks.len(),
            1,
            "the program terminates deterministically"
        );
        let end = &r.deadlocks[0];
        assert_eq!(sys.var_value(end, 0, 0), 6);
        assert_eq!(sys.var_value(end, 0, 1), 6);
    }

    #[test]
    fn gcd_partial_correctness_via_invariant_checker() {
        // "This invariant can be used to prove that the program is correct
        // if it terminates": at every reachable state x, y ≥ gcd.
        let sys = gcd_system(21, 14);
        let inv = StatePred::Le(GExpr::int(7), GExpr::var(0, 0))
            .and(StatePred::Le(GExpr::int(7), GExpr::var(0, 1)));
        assert!(check_invariant(&sys, &inv, 10_000).holds());
    }

    #[test]
    fn spring_energy_is_conserved_within_drift() {
        let s = SpringMass::released_at(1.0, 4.0, 1.0, 0.001);
        let drift = spring_mass_energy_drift(s, 100_000);
        assert!(drift < 0.01, "energy drift {drift} too large");
    }

    #[test]
    fn spring_oscillates() {
        let mut s = SpringMass::released_at(1.0, 4.0, 1.0, 0.001);
        let mut crossed = 0;
        let mut prev = s.x;
        for _ in 0..20_000 {
            s.step();
            if prev.signum() != s.x.signum() {
                crossed += 1;
            }
            prev = s.x;
        }
        assert!(
            crossed >= 2,
            "the mass must oscillate (crossed {crossed} times)"
        );
    }

    #[test]
    #[should_panic(expected = "positive inputs")]
    fn gcd_rejects_nonpositive() {
        let _ = gcd_system(0, 5);
    }
}
