//! `bip-embed` — semantically coherent embeddings into BIP (§5.4).
//!
//! "To enforce coherency in design frameworks, their languages, DSLs in
//! particular, are translated into a common general-purpose programming
//! language. [...] An embedding of L into H is defined as a two-step
//! transformation involving functions χ and σ": χ is a structure-preserving
//! homomorphism (components of L map to components of H, glue to glue); σ
//! adds the coordination implied by L's operational semantics.
//!
//! * [`lustre`] — a mini synchronous data-flow language with the operator
//!   set of Fig. 5.2 (arithmetic nodes, `pre` unit delays, inputs,
//!   constants) and a reference interpreter;
//! * [`embed`] — the embedding into BIP: one atom per node (χ), global
//!   `str`/`cmp` cycle connectors plus data-flow feed connectors (σ), with
//!   tests showing stream equivalence with the interpreter and **linear
//!   model size** ("the generated BIP models preserve the structure of the
//!   initial programs, their size is linear with respect to the initial
//!   program size");
//! * [`dynsys`] — the dynamic-systems comparison of Fig. 6.1: the GCD
//!   program with its invariant `GCD(x, y) = GCD(x0, y0)`, and the
//!   discretized spring–mass system with its conserved energy.

pub mod dynsys;
pub mod embed;
pub mod lustre;

pub use dynsys::{gcd_system, spring_mass_energy_drift, SpringMass};
pub use embed::{embed_program, EmbeddedProgram};
pub use lustre::{integrator, NodeId, NodeKind, Program};
