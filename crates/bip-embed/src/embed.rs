//! The embedding χ/σ of mini-Lustre into BIP — Fig. 5.2.
//!
//! χ (structure preservation): every data-flow node becomes one BIP atom;
//! every data-flow connection becomes one *feed* connector moving the
//! producer's value to the consumer.
//!
//! σ (semantic coordination): two global rendezvous `str` and `cmp`
//! "synchronously start and complete cycles" exactly as in the figure;
//! within a cycle the feed connectors fire in data-flow order, enforced by
//! the atoms' control locations (a node offers its value only once
//! computed).
//!
//! The tests check stream equivalence with the reference interpreter and
//! the paper's size claim: atoms = nodes, connectors = consumers + 2 —
//! linear in the program.

use bip_core::{AtomBuilder, ConnectorBuilder, Expr, ModelError, System, SystemBuilder};

use crate::lustre::{NodeId, NodeKind, Program};

/// A mini-Lustre program embedded into BIP.
#[derive(Debug)]
pub struct EmbeddedProgram {
    /// The BIP system (atoms = nodes, plus `str`/`cmp`/feed connectors).
    pub system: System,
    /// Component index of each node's atom.
    pub node_comp: Vec<usize>,
    /// The source program.
    pub program: Program,
}

/// Embed a program. See the module docs for the construction.
///
/// # Errors
///
/// Returns [`ModelError`] if the program is not well-formed (combinational
/// cycle) — reported as an unknown-name error on the offending node — or if
/// system validation fails.
pub fn embed_program(program: &Program) -> Result<EmbeddedProgram, ModelError> {
    if program.topo_order().is_none() {
        return Err(ModelError::UnknownName {
            kind: "well-formed program (combinational cycle)",
            name: "<program>".to_string(),
        });
    }
    let mut sb = SystemBuilder::new();
    let mut node_comp = Vec::with_capacity(program.nodes().len());
    for (i, kind) in program.nodes().iter().enumerate() {
        let atom = match kind {
            NodeKind::Input(k) => AtomBuilder::new(format!("input{k}"))
                .var("out", 0)
                .port("str")
                .port("cmp")
                .port_exporting("send", ["out"])
                .location("start")
                .location("done")
                .initial("start")
                .transition("start", "str", "done")
                .transition("done", "cmp", "start")
                .transition("done", "send", "done")
                .build()?,
            NodeKind::Const(c) => AtomBuilder::new(format!("const{c}"))
                .var("out", *c)
                .port("str")
                .port("cmp")
                .port_exporting("send", ["out"])
                .location("start")
                .location("done")
                .initial("start")
                .transition("start", "str", "done")
                .transition("done", "cmp", "start")
                .transition("done", "send", "done")
                .build()?,
            NodeKind::Pre(init, _) => AtomBuilder::new("pre")
                .var("out", 0)
                .var("state", *init)
                .port("str")
                .port("cmp")
                .port_exporting("send", ["out"])
                .port_exporting("recv", ["state"])
                .location("start")
                .location("await")
                .location("done")
                .initial("start")
                // B_pre: emit the stored value, then absorb this cycle's
                // input into the store.
                .guarded_transition(
                    "start",
                    "str",
                    Expr::t(),
                    vec![("out", Expr::var(1))],
                    "await",
                )
                .transition("await", "recv", "done")
                .transition("await", "send", "await")
                .transition("done", "send", "done")
                .transition("done", "cmp", "start")
                .build()?,
            NodeKind::Add(_, _) | NodeKind::Sub(_, _) | NodeKind::Mul(_, _) => {
                let op = match kind {
                    NodeKind::Add(_, _) => Expr::var(1).add(Expr::var(2)),
                    NodeKind::Sub(_, _) => Expr::var(1).sub(Expr::var(2)),
                    _ => Expr::var(1).mul(Expr::var(2)),
                };
                let name = match kind {
                    NodeKind::Add(_, _) => "add",
                    NodeKind::Sub(_, _) => "sub",
                    _ => "mul",
                };
                AtomBuilder::new(name)
                    .var("out", 0)
                    .var("in1", 0)
                    .var("in2", 0)
                    .port("str")
                    .port("cmp")
                    .port_exporting("send", ["out"])
                    .port_exporting("recv", ["in1", "in2"])
                    .location("start")
                    .location("await")
                    .location("done")
                    .initial("start")
                    .transition("start", "str", "await")
                    // B+: compute once both inputs arrived (the feed
                    // connector writes in1/in2, then this update runs).
                    .guarded_transition("await", "recv", Expr::t(), vec![("out", op)], "done")
                    .transition("done", "send", "done")
                    .transition("done", "cmp", "start")
                    .build()?
            }
        };
        node_comp.push(sb.add_instance(format!("n{i}"), &atom));
    }
    // σ: global start / complete rendezvous.
    sb.add_connector(
        ConnectorBuilder::rendezvous("str", node_comp.iter().map(|&c| (c, "str".to_string())))
            .silent(),
    );
    sb.add_connector(ConnectorBuilder::rendezvous(
        "cmp",
        node_comp.iter().map(|&c| (c, "cmp".to_string())),
    ));
    // χ: one feed connector per consuming node.
    for (i, kind) in program.nodes().iter().enumerate() {
        let reads = kind.reads();
        if reads.is_empty() {
            continue;
        }
        // Unique producers, endpoint 0 = consumer.
        let mut producers: Vec<NodeId> = reads.clone();
        producers.sort_unstable();
        producers.dedup();
        let mut ports: Vec<(usize, String)> = vec![(node_comp[i], "recv".to_string())];
        ports.extend(
            producers
                .iter()
                .map(|&p| (node_comp[p], "send".to_string())),
        );
        let mut cb = ConnectorBuilder::rendezvous(format!("feed{i}"), ports).silent();
        // Transfers: consumer's input slots from producers' outs.
        let endpoint_of = |p: NodeId| -> u32 {
            (producers
                .iter()
                .position(|&q| q == p)
                .expect("producer present")
                + 1) as u32
        };
        match kind {
            NodeKind::Pre(_, a) => {
                // state (var 1) := producer.out.
                cb = cb.transfer(0, 1, Expr::param(endpoint_of(*a), 0));
            }
            NodeKind::Add(a, b) | NodeKind::Sub(a, b) | NodeKind::Mul(a, b) => {
                cb = cb.transfer(0, 1, Expr::param(endpoint_of(*a), 0));
                cb = cb.transfer(0, 2, Expr::param(endpoint_of(*b), 0));
            }
            _ => {}
        }
        sb.add_connector(cb);
    }
    Ok(EmbeddedProgram {
        system: sb.build()?,
        node_comp,
        program: program.clone(),
    })
}

impl EmbeddedProgram {
    /// Run the embedded system for `cycles` synchronous rounds, driving the
    /// `Input` atoms from `inputs` and collecting the output streams.
    /// Execution is deterministic (first-enabled); the data-flow order
    /// makes the result confluent regardless.
    ///
    /// # Panics
    ///
    /// Panics if the system blocks mid-cycle (would indicate an embedding
    /// bug) or inputs are too short.
    pub fn run(&self, inputs: &[Vec<i64>], cycles: usize) -> Vec<Vec<i64>> {
        let sys = &self.system;
        let mut st = sys.initial_state();
        let mut out = vec![Vec::with_capacity(cycles); self.program.outputs().len()];
        #[allow(clippy::needless_range_loop)] // t is the cycle index across all input streams
        for t in 0..cycles {
            // Load inputs for this cycle.
            for (i, kind) in self.program.nodes().iter().enumerate() {
                if let NodeKind::Input(k) = kind {
                    sys.set_var(&mut st, self.node_comp[i], 0, inputs[*k][t]);
                }
            }
            // Drive until `cmp` fires.
            loop {
                let succ = sys.successors(&st);
                assert!(!succ.is_empty(), "embedded system blocked at cycle {t}");
                let (step, next) = &succ[0];
                let fired_cmp = sys.step_label(step) == Some("cmp");
                st = next.clone();
                if fired_cmp {
                    break;
                }
            }
            // Outputs were latched by the nodes' compute actions; `cmp`
            // does not change variables.
            for (oi, &o) in self.program.outputs().iter().enumerate() {
                out[oi].push(sys.var_value(&st, self.node_comp[o], 0));
            }
        }
        out
    }

    /// Model-size metrics for the linearity claim (E4): `(atoms,
    /// connectors, total transitions)`.
    pub fn size(&self) -> (usize, usize, usize) {
        let sys = &self.system;
        let transitions: usize = (0..sys.num_components())
            .map(|c| sys.atom_type(c).transitions().len())
            .sum();
        (sys.num_components(), sys.num_connectors(), transitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lustre::integrator;

    #[test]
    fn integrator_embedding_matches_interpreter() {
        let p = integrator();
        let e = embed_program(&p).unwrap();
        let xs = vec![vec![1, 2, 3, 4, 5, -2, 7]];
        let want = p.eval(&xs, 7);
        let got = e.run(&xs, 7);
        assert_eq!(
            got, want,
            "Fig 5.2: the BIP program computes the running sums"
        );
    }

    #[test]
    fn structure_preservation_chi() {
        let p = integrator();
        let e = embed_program(&p).unwrap();
        // One atom per node.
        assert_eq!(e.system.num_components(), p.nodes().len());
        // str + cmp + one feed per consuming node (adder, pre).
        assert_eq!(e.system.num_connectors(), 2 + 2);
    }

    #[test]
    fn size_is_linear_in_program_size() {
        let mut sizes = Vec::new();
        for k in [4usize, 8, 16, 32] {
            let p = Program::random(k, 42);
            let e = embed_program(&p).unwrap();
            let (atoms, conns, trans) = e.size();
            assert_eq!(atoms, k + 1, "one atom per node");
            assert!(conns <= k + 3);
            sizes.push((k, atoms, conns, trans));
        }
        // Transitions grow linearly: ratio to k is bounded by a constant.
        for &(k, _, _, trans) in &sizes {
            assert!(trans <= 6 * (k + 1), "k={k}: {trans} transitions");
        }
    }

    #[test]
    fn random_programs_agree_with_interpreter() {
        for seed in 0..8 {
            let p = Program::random(12, seed);
            let e = embed_program(&p).unwrap();
            let xs = vec![(0..20).map(|i| (i * 3 - 7) as i64).collect::<Vec<i64>>()];
            assert_eq!(e.run(&xs, 20), p.eval(&xs, 20), "seed {seed}");
        }
    }

    #[test]
    fn diamond_sharing_single_producer() {
        // y = x + x: both inputs from the same producer.
        let mut p = Program::new();
        let x = p.node(NodeKind::Input(0));
        let y = p.node(NodeKind::Add(x, x));
        p.output(y);
        let e = embed_program(&p).unwrap();
        let xs = vec![vec![3, 5]];
        assert_eq!(e.run(&xs, 2), vec![vec![6, 10]]);
    }

    #[test]
    fn combinational_cycle_rejected() {
        let mut p = Program::new();
        p.node(NodeKind::Add(0, 0));
        p.output(0);
        assert!(embed_program(&p).is_err());
    }

    #[test]
    fn deep_pipeline() {
        // x -> pre -> pre -> pre: three-cycle delay.
        let mut p = Program::new();
        let x = p.node(NodeKind::Input(0));
        let d1 = p.node(NodeKind::Pre(0, x));
        let d2 = p.node(NodeKind::Pre(0, d1));
        let d3 = p.node(NodeKind::Pre(0, d2));
        p.output(d3);
        let e = embed_program(&p).unwrap();
        let xs = vec![vec![9, 8, 7, 6, 5]];
        assert_eq!(e.run(&xs, 5), vec![vec![0, 0, 0, 9, 8]]);
        assert_eq!(e.run(&xs, 5), p.eval(&xs, 5));
    }
}
