//! The multi-threaded engine (§5.6).
//!
//! Architecture exactly as the paper describes: "each atomic component is
//! assigned to a thread, with the engine itself being a thread.
//! Communication occurs only between atomic components and the engine —
//! never directly between different atomic components."
//!
//! Protocol per round:
//!
//! 1. every component thread sends its local state (location + variables)
//!    to the engine;
//! 2. the engine reassembles the global state, brings its incremental
//!    [`bip_core::EnabledSet`] up to date (only connectors watching
//!    components that moved last round are re-evaluated), applies
//!    priorities, picks one step with its [`Policy`], evaluates the data
//!    transfer, and sends each participant its chosen transition (plus
//!    variable writes); non-participants are told to hold;
//! 3. participants fire locally and the next round begins.
//!
//! The result is observationally a sequential run — the engine is the
//! synchronization point — which is what makes the schedule checkable
//! against [`bip_core::System::successors`] (see tests).
//!
//! [`ThreadedEngine`] keeps the component threads alive across calls and
//! implements the unified [`Engine`] trait; [`run_threaded`] is the legacy
//! one-shot wrapper.

use std::thread;

use bip_core::{EnabledSet, State, StatePred, Step, System, TransitionId, Value};
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::engine::{Engine, ExecContext, RunReport, StopReason};
use crate::policy::{Policy, RandomPolicy};
use crate::run_loop;
use crate::trace::Trace;

/// What a component thread reports to the engine each round.
#[derive(Debug, Clone)]
struct LocalState {
    comp: usize,
    loc: u32,
    vars: Vec<Value>,
}

/// Engine-to-component commands.
#[derive(Debug, Clone)]
enum Command {
    /// Fire this transition after overwriting the given variables.
    Fire {
        transition: TransitionId,
        writes: Vec<(u32, Value)>,
    },
    /// Stay put this round.
    Hold,
    /// Terminate the thread.
    Stop,
}

/// Summary of a threaded run (legacy shape kept for [`run_threaded`]).
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Interactions executed.
    pub steps: usize,
    /// `true` if the run ended in a global deadlock.
    pub deadlocked: bool,
    /// The observable word of the run (connector names, in order).
    pub word: Vec<String>,
    /// The final global state (reassembled from component reports).
    pub final_state: State,
}

/// One thread per atomic component plus the engine, kept alive across
/// [`Engine::step`] / [`Engine::run`] calls.
#[derive(Debug)]
pub struct ThreadedEngine<P: Policy = RandomPolicy> {
    sys: System,
    state: State,
    es: EnabledSet,
    ctx: ExecContext<P>,
    to_comps: Vec<Sender<Command>>,
    from_comps: Receiver<LocalState>,
    handles: Vec<thread::JoinHandle<()>>,
    /// Set once nothing is enabled; the engine stops gathering reports.
    dead: bool,
    /// Scratch for per-participant variable writes.
    writes_scratch: Vec<Command>,
}

impl<P: Policy> ThreadedEngine<P> {
    /// Spawn one thread per component, all at their initial local states.
    pub fn new(sys: System, policy: P) -> ThreadedEngine<P> {
        let n = sys.num_components();
        let (to_engine, from_comps) = unbounded();
        let mut to_comps = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for comp in 0..n {
            let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
            to_comps.push(tx);
            let ty = sys.atom_type(comp).clone();
            let report = to_engine.clone();
            handles.push(thread::spawn(move || {
                let mut loc = ty.initial();
                let mut vars = ty.initial_vars();
                loop {
                    if report
                        .send(LocalState {
                            comp,
                            loc: loc.0,
                            vars: vars.clone(),
                        })
                        .is_err()
                    {
                        return; // engine gone
                    }
                    match rx.recv() {
                        Ok(Command::Fire { transition, writes }) => {
                            for (v, val) in writes {
                                vars[v as usize] = val;
                            }
                            ty.apply_updates(transition, &mut vars);
                            loc = ty.transition(transition).to;
                        }
                        Ok(Command::Hold) => {}
                        Ok(Command::Stop) | Err(_) => return,
                    }
                }
            }));
        }
        let state = sys.initial_state();
        let es = sys.new_enabled_set();
        ThreadedEngine {
            sys,
            state,
            es,
            ctx: ExecContext::new(policy),
            to_comps,
            from_comps,
            handles,
            dead: false,
            writes_scratch: Vec::new(),
        }
    }

    /// The shared execution context (policy, monitors, trace).
    pub fn context(&self) -> &ExecContext<P> {
        &self.ctx
    }

    /// Mutable access to the execution context.
    pub fn context_mut(&mut self) -> &mut ExecContext<P> {
        &mut self.ctx
    }

    /// Attach a safety monitor.
    pub fn add_monitor(&mut self, name: impl Into<String>, pred: StatePred) -> &mut Self {
        self.ctx.add_monitor(name, pred);
        self
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.ctx.trace
    }

    /// `true` once the system deadlocked (no further steps possible).
    pub fn deadlocked(&self) -> bool {
        self.dead
    }

    /// Receive this round's report from every component and reassemble the
    /// global state.
    fn gather_reports(&mut self) {
        let n = self.sys.num_components();
        for _ in 0..n {
            let r = self.from_comps.recv().expect("component threads alive");
            let c = r.comp;
            // The engine predicted these values when it dispatched the last
            // round; reconciling here keeps the channel protocol the single
            // source of truth (and catches drift in debug builds).
            debug_assert_eq!(self.state.locs[c], r.loc, "component {c} diverged");
            self.state.locs[c] = r.loc;
            for (i, v) in r.vars.iter().enumerate() {
                self.sys.set_var(&mut self.state, c, i as u32, *v);
            }
        }
    }

    /// One engine round: gather, pick, dispatch. `None` on deadlock.
    pub fn step(&mut self) -> Option<Step> {
        if self.dead {
            return None;
        }
        self.gather_reports();
        self.sys.refresh_enabled(&self.state, &mut self.es);
        let scratch = &mut self.ctx.scratch;
        scratch.clear();
        self.sys
            .for_each_enabled(&self.state, &self.es, |s| scratch.push(s));
        if scratch.is_empty() {
            // Components stay parked on `recv` until shutdown.
            self.dead = true;
            return None;
        }
        let i = self
            .ctx
            .policy
            .choose(&self.sys, &self.state, scratch)
            .min(scratch.len() - 1);
        let chosen = self.ctx.scratch[i];
        // Fire on the engine's copy first: this resolves local
        // nondeterminism and computes the post-transfer store.
        let pre = self.state.clone();
        let policy = &mut self.ctx.policy;
        let step =
            self.sys
                .fire_enabled(&mut self.state, &mut self.es, chosen, |sys, comp, cands| {
                    policy.choose_local(sys, comp, cands)
                });
        // Dispatch: participants get their transition plus the variable
        // writes the data transfer produced; everyone else holds.
        let n = self.sys.num_components();
        let mut cmd = std::mem::take(&mut self.writes_scratch);
        cmd.clear();
        cmd.resize(n, Command::Hold);
        if let Step::Interaction {
            interaction,
            transitions,
        } = &step
        {
            // Replay the transfer alone on the pre-state to isolate its
            // writes (participant updates run component-side after them).
            if !self
                .sys
                .connector(interaction.connector)
                .transfer
                .is_empty()
            {
                let mut transfer_state = pre.clone();
                self.sys
                    .fire_interaction(&mut transfer_state, interaction, &[]);
                for &(comp, tid) in transitions {
                    let nvars = self.sys.atom_type(comp).vars().len();
                    let writes: Vec<(u32, Value)> = (0..nvars as u32)
                        .filter(|&v| {
                            self.sys.var_value(&transfer_state, comp, v)
                                != self.sys.var_value(&pre, comp, v)
                        })
                        .map(|v| (v, self.sys.var_value(&transfer_state, comp, v)))
                        .collect();
                    cmd[comp] = Command::Fire {
                        transition: tid,
                        writes,
                    };
                }
            } else {
                for &(comp, tid) in transitions {
                    cmd[comp] = Command::Fire {
                        transition: tid,
                        writes: Vec::new(),
                    };
                }
            }
        } else if let Step::Internal {
            component,
            transition,
        } = &step
        {
            cmd[*component] = Command::Fire {
                transition: *transition,
                writes: Vec::new(),
            };
        }
        for (c, tx) in self.to_comps.iter().enumerate() {
            tx.send(std::mem::replace(&mut cmd[c], Command::Hold))
                .expect("component thread alive");
        }
        self.writes_scratch = cmd;
        self.ctx.note_step(&self.sys, &step);
        Some(step)
    }

    /// Execute up to `budget` interactions.
    pub fn run(&mut self, budget: usize) -> RunReport {
        run_loop!(self, budget, |eng| eng.step(), &self.sys, &self.state)
    }

    /// Summary of everything executed so far.
    pub fn report(&self) -> RunReport {
        self.ctx.report()
    }

    /// The engine's view of the global state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Legacy-shaped summary of the whole execution so far.
    pub fn threaded_report(&self) -> ThreadedReport {
        ThreadedReport {
            steps: self.ctx.steps_total(),
            deadlocked: self.dead,
            word: self.ctx.trace.observable_word(),
            final_state: self.state.clone(),
        }
    }

    fn shutdown(&mut self) {
        for tx in &self.to_comps {
            let _ = tx.send(Command::Stop);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl<P: Policy> Drop for ThreadedEngine<P> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl<P: Policy> Engine for ThreadedEngine<P> {
    fn system(&self) -> &System {
        &self.sys
    }

    fn state(&self) -> &State {
        &self.state
    }

    fn step(&mut self) -> Option<Step> {
        ThreadedEngine::step(self)
    }

    fn run(&mut self, budget: usize) -> RunReport {
        ThreadedEngine::run(self, budget)
    }

    fn report(&self) -> RunReport {
        ThreadedEngine::report(self)
    }
}

/// Run `sys` for up to `budget` interactions on one thread per component
/// plus an engine thread; `seed` drives the engine's random choices.
/// Compatibility wrapper over [`ThreadedEngine`].
pub fn run_threaded(sys: &System, budget: usize, seed: u64) -> ThreadedReport {
    let mut engine = ThreadedEngine::new(sys.clone(), RandomPolicy::new(seed));
    let report = engine.run(budget);
    let mut out = engine.threaded_report();
    out.steps = report.steps;
    out.deadlocked = report.stop == StopReason::Deadlock;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::dining_philosophers;
    use bip_core::{AtomBuilder, ConnectorBuilder, Expr, SystemBuilder};

    #[test]
    fn threaded_run_completes_budget() {
        let sys = dining_philosophers(3, false).unwrap();
        let r = run_threaded(&sys, 200, 11);
        assert_eq!(r.steps, 200);
        assert!(!r.deadlocked);
        assert_eq!(r.word.len(), 200);
    }

    #[test]
    fn threaded_state_matches_sequential_replay() {
        // Replaying the threaded engine's word in the sequential semantics
        // must be possible (schedule validity).
        let sys = dining_philosophers(3, false).unwrap();
        let r = run_threaded(&sys, 50, 23);
        let mut st = sys.initial_state();
        for label in &r.word {
            let succ = sys.successors(&st);
            let found = succ
                .iter()
                .find(|(s, _)| sys.step_label(s) == Some(label.as_str()));
            let (_, next) = found.unwrap_or_else(|| panic!("label {label} not enabled"));
            st = next.clone();
        }
    }

    #[test]
    fn threaded_detects_deadlock() {
        // A two-component one-shot handshake: deadlocks after one step.
        let once = AtomBuilder::new("once")
            .port("go")
            .location("a")
            .location("b")
            .initial("a")
            .transition("a", "go", "b")
            .build()
            .unwrap();
        let mut sb = SystemBuilder::new();
        let x = sb.add_instance("x", &once);
        let y = sb.add_instance("y", &once);
        sb.add_connector(ConnectorBuilder::rendezvous("h", [(x, "go"), (y, "go")]));
        let sys = sb.build().unwrap();
        let r = run_threaded(&sys, 100, 0);
        assert_eq!(r.steps, 1);
        assert!(r.deadlocked);
    }

    #[test]
    fn threaded_transfers_data() {
        let src = AtomBuilder::new("src")
            .var("x", 9)
            .port_exporting("snd", ["x"])
            .location("l")
            .location("m")
            .initial("l")
            .transition("l", "snd", "m")
            .build()
            .unwrap();
        let dst = AtomBuilder::new("dst")
            .var("y", 0)
            .var("z", 0)
            .port_exporting("rcv", ["y"])
            .location("l")
            .location("m")
            .initial("l")
            .guarded_transition(
                "l",
                "rcv",
                Expr::t(),
                vec![("z", Expr::var(0).add(Expr::int(1)))],
                "m",
            )
            .build()
            .unwrap();
        let mut sb = SystemBuilder::new();
        let s = sb.add_instance("s", &src);
        let d = sb.add_instance("d", &dst);
        sb.add_connector(
            ConnectorBuilder::rendezvous("xfer", [(s, "snd"), (d, "rcv")]).transfer(
                1,
                0,
                Expr::param(0, 0),
            ),
        );
        let sys = sb.build().unwrap();
        let r = run_threaded(&sys, 10, 0);
        assert_eq!(r.steps, 1);
        // y received 9 via transfer; z = y+1 computed *after* transfer.
        assert_eq!(sys.var_value(&r.final_state, d, 0), 9);
        assert_eq!(sys.var_value(&r.final_state, d, 1), 10);
    }

    #[test]
    fn persistent_engine_resumes_across_runs() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut e = ThreadedEngine::new(sys.clone(), RandomPolicy::new(5));
        let r1 = e.run(50);
        assert_eq!(r1.steps, 50);
        let r2 = e.run(50);
        assert_eq!(r2.steps, 50);
        assert_eq!(e.report().steps, 100, "context accumulates across runs");
        // The whole 100-step word replays sequentially.
        let word = e.trace().observable_word();
        assert_eq!(word.len(), 100);
        let mut st = sys.initial_state();
        for label in &word {
            let succ = sys.successors(&st);
            let hit = succ
                .iter()
                .find(|(s, _)| sys.step_label(s) == Some(label.as_str()));
            st = hit.expect("replayable").1.clone();
        }
    }

    #[test]
    fn threaded_engine_monitors_via_context() {
        let sys = dining_philosophers(4, false).unwrap();
        let mutex = bip_core::StatePred::mutex(&sys, [(0, "eating"), (1, "eating")]);
        let mut e = ThreadedEngine::new(sys, RandomPolicy::new(8));
        e.add_monitor("mutex01", mutex);
        let r = e.run(300);
        assert_eq!(r.steps, 300);
        assert_eq!(r.monitor_violations, vec![("mutex01".to_string(), 0)]);
    }
}
