//! The multi-threaded engine (§5.6).
//!
//! Architecture exactly as the paper describes: "each atomic component is
//! assigned to a thread, with the engine itself being a thread.
//! Communication occurs only between atomic components and the engine —
//! never directly between different atomic components."
//!
//! Protocol per round:
//!
//! 1. every component thread sends its local state (location + variables)
//!    to the engine;
//! 2. the engine computes the enabled interactions of the *global* state,
//!    applies priorities, picks one with its policy, evaluates the data
//!    transfer, and sends each participant its chosen transition (plus
//!    variable writes); non-participants are told to hold;
//! 3. participants fire locally and the next round begins.
//!
//! The result is observationally a sequential run — the engine is the
//! synchronization point — which is what makes the schedule checkable
//! against [`bip_core::System::successors`] (see tests).

use std::thread;

use bip_core::{State, Step, System, TransitionId, Value};
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a component thread reports to the engine each round.
#[derive(Debug, Clone)]
struct LocalState {
    comp: usize,
    loc: u32,
    vars: Vec<Value>,
}

/// Engine-to-component commands.
#[derive(Debug, Clone)]
enum Command {
    /// Fire this transition after overwriting the given variables.
    Fire { transition: TransitionId, writes: Vec<(u32, Value)> },
    /// Stay put this round.
    Hold,
    /// Terminate the thread.
    Stop,
}

/// Summary of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Interactions executed.
    pub steps: usize,
    /// `true` if the run ended in a global deadlock.
    pub deadlocked: bool,
    /// The observable word of the run (connector names, in order).
    pub word: Vec<String>,
    /// The final global state (reassembled from component reports).
    pub final_state: State,
}

/// Run `sys` for up to `budget` interactions on one thread per component
/// plus an engine thread. `seed` drives the engine's random choice.
///
/// Internal (single-component) steps are scheduled by the engine like
/// unary interactions, preserving the sequential semantics.
pub fn run_threaded(sys: &System, budget: usize, seed: u64) -> ThreadedReport {
    let n = sys.num_components();
    let (to_engine, from_comps): (Sender<LocalState>, Receiver<LocalState>) = unbounded();

    thread::scope(|scope| {
        let mut to_comps: Vec<Sender<Command>> = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for comp in 0..n {
            let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
            to_comps.push(tx);
            let ty = sys.atom_type(comp).clone();
            let report = to_engine.clone();
            handles.push(scope.spawn(move || {
                let mut loc = ty.initial();
                let mut vars = ty.initial_vars();
                loop {
                    report
                        .send(LocalState { comp, loc: loc.0, vars: vars.clone() })
                        .expect("engine alive");
                    match rx.recv().expect("engine alive") {
                        Command::Fire { transition, writes } => {
                            for (v, val) in writes {
                                vars[v as usize] = val;
                            }
                            ty.apply_updates(transition, &mut vars);
                            loc = ty.transition(transition).to;
                        }
                        Command::Hold => {}
                        Command::Stop => return,
                    }
                }
            }));
        }
        drop(to_engine);

        // Engine thread logic (runs on this scope thread).
        let mut rng = StdRng::seed_from_u64(seed);
        let mut steps = 0usize;
        let mut deadlocked = false;
        let mut word = Vec::new();
        let mut state = sys.initial_state();
        loop {
            // Gather all component reports for this round.
            let mut reports: Vec<Option<LocalState>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let r = from_comps.recv().expect("components alive");
                let slot = r.comp;
                reports[slot] = Some(r);
            }
            // Reassemble the global state.
            for (c, r) in reports.iter().enumerate() {
                let r = r.as_ref().expect("every component reported");
                state.locs[c] = r.loc;
                for (i, v) in r.vars.iter().enumerate() {
                    sys.set_var(&mut state, c, i as u32, *v);
                }
            }
            if steps >= budget {
                break;
            }
            let succ = sys.successors(&state);
            if succ.is_empty() {
                deadlocked = true;
                break;
            }
            let (step, next) = &succ[rng.gen_range(0..succ.len())];
            if let Some(l) = sys.step_label(step) {
                word.push(l.to_string());
            }
            // Dispatch commands: participants fire; others hold.
            let mut cmd: Vec<Command> = (0..n).map(|_| Command::Hold).collect();
            match step {
                Step::Interaction { interaction, transitions } => {
                    // Replay the connector's data transfer on the pre-state;
                    // the per-variable diffs become the writes shipped to the
                    // participants (their own update actions then run
                    // locally, reading the post-transfer values — the same
                    // order as the sequential semantics).
                    let mut transfer_state = state.clone();
                    sys.fire_interaction(&mut transfer_state, interaction, &[]);
                    for &(comp, tid) in transitions {
                        let nvars = sys.atom_type(comp).vars().len();
                        let writes: Vec<(u32, Value)> = (0..nvars as u32)
                            .filter(|&v| {
                                sys.var_value(&transfer_state, comp, v)
                                    != sys.var_value(&state, comp, v)
                            })
                            .map(|v| (v, sys.var_value(&transfer_state, comp, v)))
                            .collect();
                        cmd[comp] = Command::Fire { transition: tid, writes };
                    }
                }
                Step::Internal { component, transition } => {
                    cmd[*component] = Command::Fire { transition: *transition, writes: Vec::new() };
                }
            }
            for (c, tx) in to_comps.iter().enumerate() {
                tx.send(cmd[c].clone()).expect("component alive");
            }
            state = next.clone();
            steps += 1;
        }
        for tx in &to_comps {
            let _ = tx.send(Command::Stop);
        }
        for h in handles {
            h.join().expect("component thread");
        }
        ThreadedReport { steps, deadlocked, word, final_state: state }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::dining_philosophers;
    use bip_core::{AtomBuilder, ConnectorBuilder, Expr, SystemBuilder};

    #[test]
    fn threaded_run_completes_budget() {
        let sys = dining_philosophers(3, false).unwrap();
        let r = run_threaded(&sys, 200, 11);
        assert_eq!(r.steps, 200);
        assert!(!r.deadlocked);
        assert_eq!(r.word.len(), 200);
    }

    #[test]
    fn threaded_state_matches_sequential_replay() {
        // Replaying the threaded engine's word in the sequential semantics
        // must be possible (schedule validity).
        let sys = dining_philosophers(3, false).unwrap();
        let r = run_threaded(&sys, 50, 23);
        let mut st = sys.initial_state();
        for label in &r.word {
            let succ = sys.successors(&st);
            let found = succ.iter().find(|(s, _)| sys.step_label(s) == Some(label.as_str()));
            let (_, next) = found.unwrap_or_else(|| panic!("label {label} not enabled"));
            st = next.clone();
        }
    }

    #[test]
    fn threaded_detects_deadlock() {
        // A two-component one-shot handshake: deadlocks after one step.
        let once = AtomBuilder::new("once")
            .port("go")
            .location("a")
            .location("b")
            .initial("a")
            .transition("a", "go", "b")
            .build()
            .unwrap();
        let mut sb = SystemBuilder::new();
        let x = sb.add_instance("x", &once);
        let y = sb.add_instance("y", &once);
        sb.add_connector(ConnectorBuilder::rendezvous("h", [(x, "go"), (y, "go")]));
        let sys = sb.build().unwrap();
        let r = run_threaded(&sys, 100, 0);
        assert_eq!(r.steps, 1);
        assert!(r.deadlocked);
    }

    #[test]
    fn threaded_transfers_data() {
        let src = AtomBuilder::new("src")
            .var("x", 9)
            .port_exporting("snd", ["x"])
            .location("l")
            .location("m")
            .initial("l")
            .transition("l", "snd", "m")
            .build()
            .unwrap();
        let dst = AtomBuilder::new("dst")
            .var("y", 0)
            .var("z", 0)
            .port_exporting("rcv", ["y"])
            .location("l")
            .location("m")
            .initial("l")
            .guarded_transition(
                "l",
                "rcv",
                Expr::t(),
                vec![("z", Expr::var(0).add(Expr::int(1)))],
                "m",
            )
            .build()
            .unwrap();
        let mut sb = SystemBuilder::new();
        let s = sb.add_instance("s", &src);
        let d = sb.add_instance("d", &dst);
        sb.add_connector(
            ConnectorBuilder::rendezvous("xfer", [(s, "snd"), (d, "rcv")])
                .transfer(1, 0, Expr::param(0, 0)),
        );
        let sys = sb.build().unwrap();
        let r = run_threaded(&sys, 10, 0);
        assert_eq!(r.steps, 1);
        // y received 9 via transfer; z = y+1 computed *after* transfer.
        assert_eq!(sys.var_value(&r.final_state, d, 0), 9);
        assert_eq!(sys.var_value(&r.final_state, d, 1), 10);
    }
}
