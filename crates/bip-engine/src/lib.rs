//! `bip-engine` — runtime engines for BIP systems (§5.6, Fig. 5.7).
//!
//! "To implement BIP on single-core platforms we use engines — dedicated
//! middleware for the execution of the code generated from BIP
//! descriptions. The BIP toolset currently provides two engines: one for
//! real-time single-thread and one for multi-thread execution. For
//! multi-thread execution, each atomic component is assigned to a thread,
//! with the engine itself being a thread. Communication occurs only between
//! atomic components and the engine — never directly between different
//! atomic components."
//!
//! # The unified execution API
//!
//! All runtimes implement one [`Engine`] trait — `step` / `run` / `report`
//! — and carry one [`ExecContext`], which owns the scheduling [`Policy`],
//! the runtime [`Monitor`]s (safety observers over
//! [`bip_core::StatePred`]), and the recorded [`Trace`]. Code written
//! against `impl Engine` (or `&mut dyn Engine`) is backend-agnostic:
//!
//! * [`SequentialEngine`] — single-threaded, on the compiled enabled-set
//!   protocol ([`bip_core::EnabledSet`]): after each fire only the
//!   connectors watching the moved components are re-evaluated, and with
//!   trace recording off the hot loop is allocation-free;
//! * [`ThreadedEngine`] — the paper's multi-threaded architecture: one
//!   persistent thread per atom plus the engine as the synchronization
//!   point, channels only, same incremental enabled set on the engine side
//!   ([`run_threaded`] is the one-shot compatibility wrapper);
//! * `bip_rt::RtEngine` — discrete time under a duration assignment φ
//!   (time needs its own semantics, so it lives in `bip-rt`).
//!
//! Policies expose both surfaces: [`Policy::choose`] picks among compiled
//! [`bip_core::EnabledStep`]s (no successor states materialized) and
//! [`Policy::choose_local`] resolves per-participant transition choice;
//! the legacy [`Policy::pick`] over `(Step, State)` pairs keeps working —
//! its default bridge materializes one successor per enabled step.

mod engine;
mod monitor;
mod policy;
mod sequential;
mod threaded;
mod trace;

pub use engine::{Engine, ExecContext, RunReport, StopReason};
pub use monitor::{Monitor, MonitorVerdict};
pub use policy::{FirstEnabled, Policy, RandomPolicy, RoundRobinPolicy};
pub use sequential::SequentialEngine;
pub use threaded::{run_threaded, ThreadedEngine, ThreadedReport};
pub use trace::{Trace, TraceEntry};
