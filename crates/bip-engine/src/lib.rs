//! `bip-engine` — runtime engines for BIP systems (§5.6, Fig. 5.7).
//!
//! "To implement BIP on single-core platforms we use engines — dedicated
//! middleware for the execution of the code generated from BIP
//! descriptions. The BIP toolset currently provides two engines: one for
//! real-time single-thread and one for multi-thread execution. For
//! multi-thread execution, each atomic component is assigned to a thread,
//! with the engine itself being a thread. Communication occurs only between
//! atomic components and the engine — never directly between different
//! atomic components."
//!
//! This crate provides:
//!
//! * [`SequentialEngine`] — single-threaded execution with a pluggable
//!   [`Policy`] (seeded random, round-robin, ...), trace recording, and
//!   runtime [`Monitor`]s (safety observers over [`bip_core::StatePred`]);
//! * [`run_threaded`] — the multi-threaded architecture above: one thread
//!   per atom plus an engine thread, communicating over channels only
//!   (verified in tests to produce schedules the sequential semantics
//!   allows);
//! * the real-time engine lives in `bip-rt` (time needs its own semantics).

mod monitor;
mod policy;
mod sequential;
mod threaded;
mod trace;

pub use monitor::{Monitor, MonitorVerdict};
pub use policy::{FirstEnabled, Policy, RandomPolicy, RoundRobinPolicy};
pub use sequential::{RunReport, SequentialEngine, StopReason};
pub use threaded::{run_threaded, ThreadedReport};
pub use trace::{Trace, TraceEntry};
