//! Execution traces.

use bip_core::{Step, System};

/// One recorded step of an execution.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The semantic step taken.
    pub step: Step,
    /// The observable label (connector name), if any.
    pub label: Option<String>,
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Append a step.
    pub fn push(&mut self, sys: &System, step: Step) {
        let label = sys.step_label(&step).map(str::to_string);
        self.entries.push(TraceEntry { step, label });
    }

    /// All entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of steps recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The observable word: labels of observable steps in order.
    pub fn observable_word(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter_map(|e| e.label.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::dining_philosophers;

    #[test]
    fn trace_records_labels() {
        let sys = dining_philosophers(2, false).unwrap();
        let mut st = sys.initial_state();
        let mut trace = Trace::new();
        for _ in 0..4 {
            let step = sys.step(&mut st, |_| 0).unwrap();
            trace.push(&sys, step);
        }
        assert_eq!(trace.len(), 4);
        assert!(!trace.is_empty());
        let word = trace.observable_word();
        assert_eq!(word.len(), 4, "philosopher connectors are observable");
        assert!(word[0].starts_with("eat") || word[0].starts_with("rel"));
    }
}
