//! Runtime safety monitors.
//!
//! §6.3: "For trustworthiness properties, a mitigation of failures can be
//! achieved either by using redundancy techniques or monitoring at runtime."
//! A monitor observes every state the engine passes through and flags
//! violations of its predicate — the trustworthy/illegal state split of
//! Fig. 3.1, enforced dynamically.

use bip_core::{State, StatePred, System};

/// Outcome of a monitor check on one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// The state satisfies the monitored predicate.
    Ok,
    /// The state violates it.
    Violation,
}

/// A named safety monitor over global states.
#[derive(Debug, Clone)]
pub struct Monitor {
    name: String,
    pred: StatePred,
    violations: usize,
    first_violation: Option<State>,
}

impl Monitor {
    /// Create a monitor asserting `pred` on every visited state.
    pub fn new(name: impl Into<String>, pred: StatePred) -> Monitor {
        Monitor {
            name: name.into(),
            pred,
            violations: 0,
            first_violation: None,
        }
    }

    /// The monitor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Check one state, recording violations.
    pub fn check(&mut self, sys: &System, st: &State) -> MonitorVerdict {
        if self.pred.eval(sys, st) {
            MonitorVerdict::Ok
        } else {
            self.violations += 1;
            if self.first_violation.is_none() {
                self.first_violation = Some(st.clone());
            }
            MonitorVerdict::Violation
        }
    }

    /// Number of violating states seen.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// The first violating state, if any.
    pub fn first_violation(&self) -> Option<&State> {
        self.first_violation.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::dining_philosophers;

    #[test]
    fn monitor_counts_violations() {
        let sys = dining_philosophers(2, false).unwrap();
        let st = sys.initial_state();
        // "phil0 is eating" is false initially.
        let mut m = Monitor::new("m", StatePred::at(&sys, 0, "eating"));
        assert_eq!(m.check(&sys, &st), MonitorVerdict::Violation);
        assert_eq!(m.violations(), 1);
        assert!(m.first_violation().is_some());
        assert_eq!(m.name(), "m");
    }

    #[test]
    fn monitor_passes_valid_states() {
        let sys = dining_philosophers(2, false).unwrap();
        let st = sys.initial_state();
        let mut m = Monitor::new("ok", StatePred::at(&sys, 0, "thinking"));
        assert_eq!(m.check(&sys, &st), MonitorVerdict::Ok);
        assert_eq!(m.violations(), 0);
        assert!(m.first_violation().is_none());
    }
}
