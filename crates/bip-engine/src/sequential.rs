//! The sequential engine: single-threaded execution of a BIP system on the
//! compiled enabled-set protocol, with monitors and trace recording.

use bip_core::{EnabledSet, State, StatePred, Step, System};

use crate::engine::{Engine, ExecContext, RunReport};
use crate::monitor::Monitor;
use crate::policy::Policy;
use crate::run_loop;
use crate::trace::Trace;

/// Single-threaded BIP execution engine.
///
/// The hot loop drives [`System::refresh_enabled`] /
/// [`System::for_each_enabled`] / [`System::fire_into`]: after the first
/// step, only connectors watching components that moved are re-evaluated,
/// and no allocation happens while the trace is off.
///
/// # Example
///
/// ```
/// use bip_core::dining_philosophers;
/// use bip_engine::{SequentialEngine, RandomPolicy};
///
/// let sys = dining_philosophers(5, false)?;
/// let mut engine = SequentialEngine::new(sys, RandomPolicy::new(7));
/// let report = engine.run(1000);
/// assert_eq!(report.steps, 1000); // conservative philosophers never block
/// # Ok::<(), bip_core::ModelError>(())
/// ```
#[derive(Debug)]
pub struct SequentialEngine<P: Policy> {
    sys: System,
    state: State,
    es: EnabledSet,
    ctx: ExecContext<P>,
}

impl<P: Policy> SequentialEngine<P> {
    /// Create an engine at the system's initial state.
    pub fn new(sys: System, policy: P) -> SequentialEngine<P> {
        let state = sys.initial_state();
        let es = sys.new_enabled_set();
        SequentialEngine {
            sys,
            state,
            es,
            ctx: ExecContext::new(policy),
        }
    }

    /// Attach a safety monitor.
    pub fn add_monitor(&mut self, name: impl Into<String>, pred: StatePred) -> &mut Self {
        self.ctx.add_monitor(name, pred);
        self
    }

    /// Stop the run at the first monitor violation.
    pub fn stop_on_violation(&mut self, yes: bool) -> &mut Self {
        self.ctx.stop_on_violation = yes;
        self
    }

    /// Record fired steps into the trace (default on; turn off for
    /// allocation-free hot loops).
    pub fn record_trace(&mut self, yes: bool) -> &mut Self {
        self.ctx.record_trace = yes;
        self
    }

    /// The system being executed.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.ctx.trace
    }

    /// Attached monitors.
    pub fn monitors(&self) -> &[Monitor] {
        &self.ctx.monitors
    }

    /// The shared execution context (policy, monitors, trace).
    pub fn context(&self) -> &ExecContext<P> {
        &self.ctx
    }

    /// Mutable access to the execution context.
    pub fn context_mut(&mut self) -> &mut ExecContext<P> {
        &mut self.ctx
    }

    /// Reset to the initial state (keeps monitors and policy; clears the
    /// trace and run counters).
    pub fn reset(&mut self) {
        self.state = self.sys.initial_state();
        self.es.invalidate_all();
        self.ctx.reset();
    }

    /// Execute one step under the policy; `None` on deadlock.
    pub fn step(&mut self) -> Option<Step> {
        self.sys.refresh_enabled(&self.state, &mut self.es);
        let scratch = &mut self.ctx.scratch;
        scratch.clear();
        self.sys
            .for_each_enabled(&self.state, &self.es, |s| scratch.push(s));
        if scratch.is_empty() {
            return None;
        }
        let i = self
            .ctx
            .policy
            .choose(&self.sys, &self.state, scratch)
            .min(scratch.len() - 1);
        let chosen = self.ctx.scratch[i];
        let policy = &mut self.ctx.policy;
        let step =
            self.sys
                .fire_enabled(&mut self.state, &mut self.es, chosen, |sys, comp, cands| {
                    policy.choose_local(sys, comp, cands)
                });
        self.ctx.note_step(&self.sys, &step);
        Some(step)
    }

    /// Execute up to `budget` steps.
    pub fn run(&mut self, budget: usize) -> RunReport {
        run_loop!(self, budget, |eng| eng.step(), &self.sys, &self.state)
    }

    /// Summary of everything executed so far.
    pub fn report(&self) -> RunReport {
        self.ctx.report()
    }
}

impl<P: Policy> Engine for SequentialEngine<P> {
    fn system(&self) -> &System {
        &self.sys
    }

    fn state(&self) -> &State {
        &self.state
    }

    fn step(&mut self) -> Option<Step> {
        SequentialEngine::step(self)
    }

    fn run(&mut self, budget: usize) -> RunReport {
        SequentialEngine::run(self, budget)
    }

    fn report(&self) -> RunReport {
        SequentialEngine::report(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StopReason;
    use crate::policy::RandomPolicy;
    use bip_core::dining_philosophers;

    #[test]
    fn runs_to_budget_on_live_system() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(1));
        let r = e.run(500);
        assert_eq!(r.steps, 500);
        assert_eq!(r.stop, StopReason::BudgetExhausted);
        assert_eq!(e.trace().len(), 500);
    }

    /// Prefers left-fork grabs — drives two-phase philosophers into the
    /// all-hold-left circular wait. Implements only the legacy `pick`, so it
    /// also exercises the `choose` → `pick` bridge.
    struct GreedyLeft;

    impl crate::policy::Policy for GreedyLeft {
        fn pick(
            &mut self,
            sys: &bip_core::System,
            _st: &bip_core::State,
            options: &[(bip_core::Step, bip_core::State)],
        ) -> usize {
            options
                .iter()
                .position(|(s, _)| match s {
                    bip_core::Step::Interaction { interaction, .. } => sys
                        .connector(interaction.connector)
                        .name
                        .starts_with("takeL"),
                    _ => false,
                })
                .unwrap_or(0)
        }
        fn name(&self) -> &str {
            "greedy-left"
        }
    }

    #[test]
    fn detects_deadlock() {
        let sys = dining_philosophers(3, true).unwrap();
        let mut e = SequentialEngine::new(sys, GreedyLeft);
        let r = e.run(10_000);
        assert_eq!(r.stop, StopReason::Deadlock);
        assert_eq!(r.steps, 3, "three left grabs then circular wait");
    }

    #[test]
    fn monitors_observe_mutual_exclusion() {
        let sys = dining_philosophers(4, false).unwrap();
        let mutex = bip_core::StatePred::mutex(&sys, [(0, "eating"), (1, "eating")]);
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(3));
        e.add_monitor("mutex01", mutex);
        let r = e.run(2000);
        assert_eq!(r.monitor_violations, vec![("mutex01".to_string(), 0)]);
    }

    #[test]
    fn stop_on_violation_halts() {
        let sys = dining_philosophers(2, false).unwrap();
        // "phil0 never eats" will be violated eventually.
        let never = bip_core::StatePred::at(&sys, 0, "eating").not();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(9));
        e.add_monitor("never-eat", never);
        e.stop_on_violation(true);
        let r = e.run(10_000);
        assert_eq!(r.stop, StopReason::MonitorViolation);
        assert!(e.monitors()[0].violations() >= 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let sys = dining_philosophers(2, false).unwrap();
        let init = sys.initial_state();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(5));
        // Odd step count: each eat/rel pair cancels, so an odd total cannot
        // land back on the initial state.
        e.run(11);
        assert_ne!(e.state(), &init);
        e.reset();
        assert_eq!(e.state(), &init);
        assert!(e.trace().is_empty());
    }

    #[test]
    fn reset_clears_report_counters() {
        let sys = dining_philosophers(2, false).unwrap();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(5));
        e.run(100);
        assert_eq!(e.report().steps, 100);
        e.reset();
        assert_eq!(
            e.report().steps,
            0,
            "report must agree with the empty trace"
        );
        assert!(e.trace().is_empty());
    }

    #[test]
    fn engine_trait_object_runs() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(4));
        let engine: &mut dyn Engine = &mut e;
        let r = engine.run(100);
        assert_eq!(r.steps, 100);
        assert_eq!(engine.report().steps, 100);
    }

    #[test]
    fn trace_off_still_counts_steps() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(2));
        e.record_trace(false);
        let r = e.run(250);
        assert_eq!(r.steps, 250);
        assert!(e.trace().is_empty());
        assert_eq!(e.report().steps, 250);
    }

    #[test]
    fn engine_agrees_with_legacy_successors_walk() {
        // Same policy decisions → the engine's visited states must be
        // reachable via the legacy successor relation at every step.
        let sys = dining_philosophers(3, false).unwrap();
        let mut e = SequentialEngine::new(sys.clone(), RandomPolicy::new(17));
        for _ in 0..100 {
            let before = e.state().clone();
            let step = e.step().expect("live system");
            let succ = sys.successors(&before);
            assert!(
                succ.iter().any(|(s, next)| *s == step && next == e.state()),
                "engine step not in legacy successor set"
            );
        }
    }
}
