//! The sequential engine: single-threaded execution of a BIP system under a
//! scheduling policy, with monitors and trace recording.

use bip_core::{State, StatePred, System};

use crate::monitor::Monitor;
use crate::policy::Policy;
use crate::trace::Trace;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The step budget was exhausted.
    BudgetExhausted,
    /// No step was enabled (deadlock).
    Deadlock,
    /// A monitor flagged a violation and the engine was configured to stop.
    MonitorViolation,
}

/// Summary of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Steps actually executed.
    pub steps: usize,
    /// Why the run ended.
    pub stop: StopReason,
    /// Monitor violation counts, by monitor name.
    pub monitor_violations: Vec<(String, usize)>,
}

/// Single-threaded BIP execution engine.
///
/// # Example
///
/// ```
/// use bip_core::dining_philosophers;
/// use bip_engine::{SequentialEngine, RandomPolicy};
///
/// let sys = dining_philosophers(5, false)?;
/// let mut engine = SequentialEngine::new(sys, RandomPolicy::new(7));
/// let report = engine.run(1000);
/// assert_eq!(report.steps, 1000); // conservative philosophers never block
/// # Ok::<(), bip_core::ModelError>(())
/// ```
#[derive(Debug)]
pub struct SequentialEngine<P: Policy> {
    sys: System,
    state: State,
    policy: P,
    monitors: Vec<Monitor>,
    stop_on_violation: bool,
    trace: Trace,
}

impl<P: Policy> SequentialEngine<P> {
    /// Create an engine at the system's initial state.
    pub fn new(sys: System, policy: P) -> SequentialEngine<P> {
        let state = sys.initial_state();
        SequentialEngine {
            sys,
            state,
            policy,
            monitors: Vec::new(),
            stop_on_violation: false,
            trace: Trace::new(),
        }
    }

    /// Attach a safety monitor.
    pub fn add_monitor(&mut self, name: impl Into<String>, pred: StatePred) -> &mut Self {
        self.monitors.push(Monitor::new(name, pred));
        self
    }

    /// Stop the run at the first monitor violation.
    pub fn stop_on_violation(&mut self, yes: bool) -> &mut Self {
        self.stop_on_violation = yes;
        self
    }

    /// The system being executed.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Current state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Attached monitors.
    pub fn monitors(&self) -> &[Monitor] {
        &self.monitors
    }

    /// Reset to the initial state (keeps monitors and policy).
    pub fn reset(&mut self) {
        self.state = self.sys.initial_state();
        self.trace = Trace::new();
    }

    /// Execute up to `budget` steps.
    pub fn run(&mut self, budget: usize) -> RunReport {
        let mut steps = 0usize;
        let mut stop = StopReason::BudgetExhausted;
        // Check monitors on the initial state too.
        let mut violated = false;
        for m in &mut self.monitors {
            if m.check(&self.sys, &self.state) == crate::monitor::MonitorVerdict::Violation {
                violated = true;
            }
        }
        if !(violated && self.stop_on_violation) {
            while steps < budget {
                let succ = self.sys.successors(&self.state);
                if succ.is_empty() {
                    stop = StopReason::Deadlock;
                    break;
                }
                let i = self.policy.pick(&self.sys, &self.state, &succ);
                let (step, next) = succ[i].clone();
                self.state = next;
                self.trace.push(&self.sys, step);
                steps += 1;
                let mut violated = false;
                for m in &mut self.monitors {
                    if m.check(&self.sys, &self.state)
                        == crate::monitor::MonitorVerdict::Violation
                    {
                        violated = true;
                    }
                }
                if violated && self.stop_on_violation {
                    stop = StopReason::MonitorViolation;
                    break;
                }
            }
        } else {
            stop = StopReason::MonitorViolation;
        }
        RunReport {
            steps,
            stop,
            monitor_violations: self
                .monitors
                .iter()
                .map(|m| (m.name().to_string(), m.violations()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RandomPolicy;
    use bip_core::dining_philosophers;

    #[test]
    fn runs_to_budget_on_live_system() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(1));
        let r = e.run(500);
        assert_eq!(r.steps, 500);
        assert_eq!(r.stop, StopReason::BudgetExhausted);
        assert_eq!(e.trace().len(), 500);
    }

    /// Prefers left-fork grabs — drives two-phase philosophers into the
    /// all-hold-left circular wait.
    struct GreedyLeft;

    impl crate::policy::Policy for GreedyLeft {
        fn pick(
            &mut self,
            sys: &bip_core::System,
            _st: &bip_core::State,
            options: &[(bip_core::Step, bip_core::State)],
        ) -> usize {
            options
                .iter()
                .position(|(s, _)| match s {
                    bip_core::Step::Interaction { interaction, .. } => {
                        sys.connector(interaction.connector).name.starts_with("takeL")
                    }
                    _ => false,
                })
                .unwrap_or(0)
        }
        fn name(&self) -> &str {
            "greedy-left"
        }
    }

    #[test]
    fn detects_deadlock() {
        let sys = dining_philosophers(3, true).unwrap();
        let mut e = SequentialEngine::new(sys, GreedyLeft);
        let r = e.run(10_000);
        assert_eq!(r.stop, StopReason::Deadlock);
        assert_eq!(r.steps, 3, "three left grabs then circular wait");
    }

    #[test]
    fn monitors_observe_mutual_exclusion() {
        let sys = dining_philosophers(4, false).unwrap();
        let mutex = bip_core::StatePred::mutex(&sys, [(0, "eating"), (1, "eating")]);
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(3));
        e.add_monitor("mutex01", mutex);
        let r = e.run(2000);
        assert_eq!(r.monitor_violations, vec![("mutex01".to_string(), 0)]);
    }

    #[test]
    fn stop_on_violation_halts() {
        let sys = dining_philosophers(2, false).unwrap();
        // "phil0 never eats" will be violated eventually.
        let never = bip_core::StatePred::at(&sys, 0, "eating").not();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(9));
        e.add_monitor("never-eat", never);
        e.stop_on_violation(true);
        let r = e.run(10_000);
        assert_eq!(r.stop, StopReason::MonitorViolation);
        assert!(e.monitors()[0].violations() >= 1);
    }

    #[test]
    fn reset_restores_initial_state() {
        let sys = dining_philosophers(2, false).unwrap();
        let init = sys.initial_state();
        let mut e = SequentialEngine::new(sys, RandomPolicy::new(5));
        // Odd step count: each eat/rel pair cancels, so an odd total cannot
        // land back on the initial state.
        e.run(11);
        assert_ne!(e.state(), &init);
        e.reset();
        assert_eq!(e.state(), &init);
        assert!(e.trace().is_empty());
    }
}
