//! Scheduling policies: how an engine chooses among enabled steps.
//!
//! Priorities already filtered the enabled set (they are part of the model,
//! §5.5); a policy resolves the *remaining* nondeterminism — the paper's
//! "reducing non-determinism (through scheduling)" design parameter (§3.3).

use bip_core::{CompId, EnabledStep, State, Step, System, TransitionId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic-by-seed strategy for picking one of the enabled steps.
///
/// The compiled execution path calls [`Policy::choose`] (over `Copy`
/// [`EnabledStep`]s, no successor states materialized) and
/// [`Policy::choose_local`] (per-participant transition choice). The legacy
/// [`Policy::pick`] remains for code still enumerating
/// [`System::successors`]; its default bridge materializes one successor
/// per enabled step, so policies written against either surface behave
/// consistently under both.
pub trait Policy {
    /// Pick an index into `options` (guaranteed non-empty).
    fn pick(&mut self, sys: &System, st: &State, options: &[(Step, State)]) -> usize;

    /// Pick an index into the compiled `options` (guaranteed non-empty)
    /// without materializing successor states.
    ///
    /// The default bridges to [`Policy::pick`] by materializing each
    /// option's successor (first local-transition choice) — correct for any
    /// legacy policy, but allocating; hot-path policies override this.
    fn choose(&mut self, sys: &System, st: &State, options: &[EnabledStep]) -> usize {
        let succ: Vec<(Step, State)> = options.iter().map(|&s| sys.materialize(st, s)).collect();
        self.pick(sys, st, &succ)
    }

    /// Resolve local nondeterminism: which of `candidates` (never empty)
    /// should participant `comp` fire? Defaults to the first.
    fn choose_local(
        &mut self,
        _sys: &System,
        _comp: CompId,
        _candidates: &[TransitionId],
    ) -> usize {
        0
    }

    /// Name for reports.
    fn name(&self) -> &str;
}

impl<T: Policy + ?Sized> Policy for Box<T> {
    fn pick(&mut self, sys: &System, st: &State, options: &[(Step, State)]) -> usize {
        (**self).pick(sys, st, options)
    }

    fn choose(&mut self, sys: &System, st: &State, options: &[EnabledStep]) -> usize {
        (**self).choose(sys, st, options)
    }

    fn choose_local(&mut self, sys: &System, comp: CompId, candidates: &[TransitionId]) -> usize {
        (**self).choose_local(sys, comp, candidates)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// Uniformly random choice with a fixed seed — the default exploration
/// policy (reproducible runs).
#[derive(Debug)]
pub struct RandomPolicy {
    rng: StdRng,
}

impl RandomPolicy {
    /// Create with a seed.
    pub fn new(seed: u64) -> RandomPolicy {
        RandomPolicy {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Policy for RandomPolicy {
    fn pick(&mut self, _sys: &System, _st: &State, options: &[(Step, State)]) -> usize {
        self.rng.gen_range(0..options.len())
    }

    fn choose(&mut self, _sys: &System, _st: &State, options: &[EnabledStep]) -> usize {
        self.rng.gen_range(0..options.len())
    }

    fn choose_local(&mut self, _sys: &System, _comp: CompId, candidates: &[TransitionId]) -> usize {
        self.rng.gen_range(0..candidates.len())
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Always the first enabled step (deterministic, useful in tests).
#[derive(Debug, Default)]
pub struct FirstEnabled;

impl Policy for FirstEnabled {
    fn pick(&mut self, _sys: &System, _st: &State, _options: &[(Step, State)]) -> usize {
        0
    }

    fn choose(&mut self, _sys: &System, _st: &State, _options: &[EnabledStep]) -> usize {
        0
    }

    fn name(&self) -> &str {
        "first-enabled"
    }
}

/// Round-robin over connectors: prefers the connector least recently fired,
/// giving a crude fairness guarantee.
#[derive(Debug, Default)]
pub struct RoundRobinPolicy {
    last_fired: Vec<u64>,
    clock: u64,
}

impl RoundRobinPolicy {
    /// Create a fresh round-robin policy.
    pub fn new() -> RoundRobinPolicy {
        RoundRobinPolicy::default()
    }
}

impl RoundRobinPolicy {
    fn pick_oldest<T>(
        &mut self,
        sys: &System,
        options: &[T],
        conn_of: impl Fn(&T) -> Option<u32>,
    ) -> usize {
        if self.last_fired.len() < sys.num_connectors() {
            self.last_fired.resize(sys.num_connectors(), 0);
        }
        self.clock += 1;
        let mut best = 0usize;
        let mut best_age = u64::MAX;
        for (i, opt) in options.iter().enumerate() {
            // Internal steps rank oldest.
            let age = conn_of(opt).map_or(0, |c| self.last_fired[c as usize]);
            if age < best_age {
                best_age = age;
                best = i;
            }
        }
        if let Some(c) = conn_of(&options[best]) {
            self.last_fired[c as usize] = self.clock;
        }
        best
    }
}

impl Policy for RoundRobinPolicy {
    fn pick(&mut self, sys: &System, _st: &State, options: &[(Step, State)]) -> usize {
        self.pick_oldest(sys, options, |(step, _)| match step {
            Step::Interaction { interaction, .. } => Some(interaction.connector.0),
            Step::Internal { .. } => None,
        })
    }

    fn choose(&mut self, sys: &System, _st: &State, options: &[EnabledStep]) -> usize {
        self.pick_oldest(sys, options, |step| match step {
            EnabledStep::Interaction(ir) => Some(ir.connector.0),
            EnabledStep::Internal { .. } => None,
        })
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::{dining_philosophers, ConnId};

    #[test]
    fn random_policy_is_reproducible() {
        let sys = dining_philosophers(3, false).unwrap();
        let run = |seed| {
            let mut p = RandomPolicy::new(seed);
            let mut st = sys.initial_state();
            let mut picks = Vec::new();
            for _ in 0..20 {
                let succ = sys.successors(&st);
                let i = p.pick(&sys, &st, &succ);
                picks.push(i);
                st = succ[i].1.clone();
            }
            picks
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn first_enabled_is_constant() {
        let sys = dining_philosophers(2, false).unwrap();
        let st = sys.initial_state();
        let succ = sys.successors(&st);
        let mut p = FirstEnabled;
        assert_eq!(p.pick(&sys, &st, &succ), 0);
        assert_eq!(p.name(), "first-enabled");
    }

    #[test]
    fn round_robin_rotates_connectors() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut p = RoundRobinPolicy::new();
        let mut st = sys.initial_state();
        let mut fired = std::collections::HashSet::new();
        for _ in 0..30 {
            let succ = sys.successors(&st);
            let i = p.pick(&sys, &st, &succ);
            if let Step::Interaction { interaction, .. } = &succ[i].0 {
                fired.insert(ConnId(interaction.connector.0));
            }
            st = succ[i].1.clone();
        }
        assert!(
            fired.len() >= 4,
            "round robin should visit many connectors: {fired:?}"
        );
    }
}
