//! The unified execution API: the [`Engine`] trait and the shared
//! [`ExecContext`].
//!
//! Every runtime — [`crate::SequentialEngine`], [`crate::ThreadedEngine`],
//! and `bip_rt::RtEngine` — drives the same compiled enabled-set protocol
//! ([`bip_core::EnabledSet`]) and carries the same [`ExecContext`] (policy,
//! safety monitors, trace), so backends are interchangeable: code written
//! against `impl Engine` can execute single-threaded, one-thread-per-atom,
//! or under a real-time duration assignment without change.

use bip_core::{EnabledStep, State, StatePred, Step, System};

use crate::monitor::{Monitor, MonitorVerdict};
use crate::policy::Policy;
use crate::trace::Trace;

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The step budget was exhausted.
    BudgetExhausted,
    /// No step was enabled (deadlock).
    Deadlock,
    /// A monitor flagged a violation and the engine was configured to stop.
    MonitorViolation,
}

/// Summary of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Steps actually executed.
    pub steps: usize,
    /// Why the run ended.
    pub stop: StopReason,
    /// Monitor violation counts, by monitor name.
    pub monitor_violations: Vec<(String, usize)>,
}

/// The execution context shared by every engine: the scheduling [`Policy`],
/// runtime [`Monitor`]s, the recorded [`Trace`], and run bookkeeping.
///
/// `P` defaults to a boxed policy so heterogeneous engines can share one
/// context type; engines with a statically-known policy avoid the vtable.
#[derive(Debug)]
pub struct ExecContext<P: Policy = Box<dyn Policy>> {
    /// Resolves the nondeterminism left after priorities.
    pub policy: P,
    /// Safety monitors checked on every visited state.
    pub monitors: Vec<Monitor>,
    /// The recorded trace (empty while `record_trace` is off).
    pub trace: Trace,
    /// Stop the run at the first monitor violation.
    pub stop_on_violation: bool,
    /// Record fired steps into `trace` (on by default; turn off for
    /// allocation-free hot loops).
    pub record_trace: bool,
    /// Steps executed across all runs of this context.
    steps_total: usize,
    /// Stop reason of the most recent run.
    last_stop: StopReason,
    /// Reusable buffer of enabled steps offered to the policy.
    pub(crate) scratch: Vec<EnabledStep>,
}

impl<P: Policy> ExecContext<P> {
    /// Fresh context around a policy.
    pub fn new(policy: P) -> ExecContext<P> {
        ExecContext {
            policy,
            monitors: Vec::new(),
            trace: Trace::new(),
            stop_on_violation: false,
            record_trace: true,
            steps_total: 0,
            last_stop: StopReason::BudgetExhausted,
            scratch: Vec::new(),
        }
    }

    /// Attach a safety monitor.
    pub fn add_monitor(&mut self, name: impl Into<String>, pred: StatePred) {
        self.monitors.push(Monitor::new(name, pred));
    }

    /// Check every monitor against `st`; `true` if any flags a violation.
    pub fn check_monitors(&mut self, sys: &System, st: &State) -> bool {
        let mut violated = false;
        for m in &mut self.monitors {
            if m.check(sys, st) == MonitorVerdict::Violation {
                violated = true;
            }
        }
        violated
    }

    /// Record a fired step (trace + step counter).
    pub fn note_step(&mut self, sys: &System, step: &Step) {
        self.steps_total += 1;
        if self.record_trace {
            self.trace.push(sys, step.clone());
        }
    }

    /// Record how the most recent run ended.
    pub fn note_stop(&mut self, stop: StopReason) {
        self.last_stop = stop;
    }

    /// Steps executed across all runs of this context.
    pub fn steps_total(&self) -> usize {
        self.steps_total
    }

    /// Reset trace and counters (monitors and policy are kept).
    pub fn reset(&mut self) {
        self.trace = Trace::new();
        self.steps_total = 0;
        self.last_stop = StopReason::BudgetExhausted;
    }

    /// Snapshot of the context's counters as a [`RunReport`].
    pub fn report(&self) -> RunReport {
        RunReport {
            steps: self.steps_total,
            stop: self.last_stop,
            monitor_violations: self
                .monitors
                .iter()
                .map(|m| (m.name().to_string(), m.violations()))
                .collect(),
        }
    }
}

/// A BIP execution backend.
///
/// The trait is the paper's engine concept (§5.6) made uniform: advance the
/// system one semantic step at a time under the context's policy, observe
/// every visited state with the context's monitors, and summarize runs.
/// Implementations: [`crate::SequentialEngine`] (single thread, compiled
/// hot path), [`crate::ThreadedEngine`] (one thread per atom plus the
/// engine), and `bip_rt::RtEngine` (discrete time under a duration map).
pub trait Engine {
    /// The system being executed.
    fn system(&self) -> &System;

    /// The engine's current global state.
    fn state(&self) -> &State;

    /// Execute one step; `None` when nothing is enabled (for a real-time
    /// engine: nothing will ever fire again).
    fn step(&mut self) -> Option<Step>;

    /// Execute up to `budget` steps, checking monitors on every visited
    /// state (including the state current at entry), honoring
    /// `stop_on_violation`.
    fn run(&mut self, budget: usize) -> RunReport;

    /// Summary of everything executed so far.
    fn report(&self) -> RunReport;
}

/// Expands to the shared `run` loop body: monitor the entry state, then
/// step until the budget, a deadlock, or a stopping violation. A macro
/// (rather than a generic function) so each engine keeps the disjoint field
/// borrows (`$self.ctx` vs. its system/state fields) the borrow checker can
/// see through. `$sys`/`$state` are accessor expressions over `$self`
/// (e.g. `&self.sys` or `self.exec.system()`); every `Engine` backend —
/// including `bip_rt::RtEngine` — expands this same definition, so run
/// semantics cannot diverge across backends.
#[doc(hidden)]
#[macro_export]
macro_rules! run_loop {
    ($self:ident, $budget:expr, |$eng:ident| $step:expr, $sys:expr, $state:expr) => {{
        let mut steps = 0usize;
        let mut stop = $crate::StopReason::BudgetExhausted;
        // Monitors observe the state current at entry, like every later one.
        let violated = $self.ctx.check_monitors($sys, $state);
        if violated && $self.ctx.stop_on_violation {
            stop = $crate::StopReason::MonitorViolation;
        } else {
            while steps < $budget {
                let $eng = &mut *$self;
                match $step {
                    None => {
                        stop = $crate::StopReason::Deadlock;
                        break;
                    }
                    Some(_) => {
                        steps += 1;
                        let violated = $self.ctx.check_monitors($sys, $state);
                        if violated && $self.ctx.stop_on_violation {
                            stop = $crate::StopReason::MonitorViolation;
                            break;
                        }
                    }
                }
            }
        }
        $self.ctx.note_stop(stop);
        let mut report = $self.ctx.report();
        report.steps = steps;
        report.stop = stop;
        report
    }};
}
