//! Timing anomalies and time robustness (§5.2.2, E8).
//!
//! "Unfortunately, the intuitive idea that safety of implementation is
//! preserved for increasing performance turns out to be wrong. That is if
//! φ′ < φ, safety for φ does not imply safety for φ′. [...] A direct
//! consequence of timing anomalies is that safety for WCET does not
//! guarantee safety for smaller execution times. Preservation of safety by
//! time-performance is called time robustness in \[1\] where it is shown that
//! this property holds for deterministic models."
//!
//! We reproduce the phenomenon with the classical multiprocessor
//! list-scheduling anomaly (Graham): a job DAG scheduled greedily on `m`
//! processors can take *longer* when a job gets *faster*, because the freed
//! processor makes a worse nondeterministic choice available. A
//! deterministic variant (jobs statically assigned to processors) is
//! monotone — time-robust — exactly as the paper states.

use std::collections::HashMap;

/// A job-shop instance: jobs with durations and precedence constraints,
/// scheduled on `processors` identical machines.
#[derive(Debug, Clone)]
pub struct JobShop {
    /// Number of processors.
    pub processors: usize,
    /// Job durations, indexed by job id.
    pub durations: Vec<u64>,
    /// Precedences `(before, after)`.
    pub precedences: Vec<(usize, usize)>,
    /// Priority list: lower index = scheduled first among ready jobs
    /// (list scheduling; this is the nondeterminism-resolution rule whose
    /// interplay with durations produces the anomaly).
    pub priority: Vec<usize>,
}

impl JobShop {
    /// The classical 9-job Graham-style instance exhibiting the anomaly on
    /// 3 processors: at the original durations the greedy list schedule
    /// finishes at 12; with every duration reduced by 1 it finishes at 13.
    ///
    /// Jobs `T1=3, T2=2, T3=2, T4=2, T5..T8=4, T9=9`; `T4 ≺ T5..T8` and
    /// `T1 ≺ T9`. Shrinking the early jobs frees processors at an instant
    /// where the priority list prefers the four medium jobs over the long
    /// `T9`, which then starts late.
    pub fn graham() -> JobShop {
        let durations = vec![3, 2, 2, 2, 4, 4, 4, 4, 9];
        let precedences = vec![(3, 4), (3, 5), (3, 6), (3, 7), (0, 8)];
        JobShop {
            processors: 3,
            durations,
            precedences,
            priority: (0..9).collect(),
        }
    }

    /// Same structure with all durations reduced by `delta` (saturating) —
    /// the "faster machine" φ′ < φ.
    pub fn speed_up(&self, delta: u64) -> JobShop {
        let mut j = self.clone();
        for d in &mut j.durations {
            *d = d.saturating_sub(delta).max(1);
        }
        j
    }
}

/// Outcome of the anomaly experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnomalyOutcome {
    /// Makespan with the original (worst-case) durations.
    pub makespan_wcet: u64,
    /// Makespan with the *reduced* durations.
    pub makespan_faster: u64,
    /// `true` if the anomaly manifests (faster durations, longer makespan).
    pub anomalous: bool,
}

/// Greedy list scheduling (nondeterministic model resolved by the priority
/// list): whenever a processor is free, start the highest-priority ready
/// job. Returns the makespan.
#[must_use]
pub fn greedy_makespan(shop: &JobShop) -> u64 {
    let n = shop.durations.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(b, a) in &shop.precedences {
        preds[a].push(b);
    }
    let mut finish: HashMap<usize, u64> = HashMap::new();
    let mut proc_free: Vec<u64> = vec![0; shop.processors];
    let mut started: Vec<bool> = vec![false; n];
    let mut now = 0u64;
    let mut running: Vec<(u64, usize)> = Vec::new(); // (end, job)
    loop {
        // Complete jobs finishing at `now`.
        running.retain(|&(end, job)| {
            if end <= now {
                finish.insert(job, end);
                false
            } else {
                true
            }
        });
        // Start ready jobs on free processors, in priority order.
        loop {
            let free_proc = proc_free.iter().position(|&t| t <= now);
            let Some(p) = free_proc else { break };
            let ready = shop.priority.iter().copied().find(|&j| {
                !started[j]
                    && preds[j]
                        .iter()
                        .all(|&q| finish.get(&q).is_some_and(|&e| e <= now))
            });
            match ready {
                Some(j) => {
                    started[j] = true;
                    let end = now + shop.durations[j];
                    proc_free[p] = end;
                    running.push((end, j));
                }
                None => break,
            }
        }
        if finish.len() == n {
            return finish.values().copied().max().unwrap_or(0);
        }
        // Advance to the next completion.
        let next = running.iter().map(|&(e, _)| e).min();
        match next {
            Some(t) => now = now.max(t),
            None => {
                // No job running and none ready: cyclic precedence.
                panic!("precedence cycle in job shop");
            }
        }
    }
}

/// Deterministic (statically partitioned) schedule: job `j` always runs on
/// processor `j % m`, in priority order per processor. Monotone in the
/// durations — the time-robust reference.
#[must_use]
pub fn partitioned_makespan(shop: &JobShop) -> u64 {
    let n = shop.durations.len();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(b, a) in &shop.precedences {
        preds[a].push(b);
    }
    let mut finish: Vec<Option<u64>> = vec![None; n];
    let mut proc_free: Vec<u64> = vec![0; shop.processors];
    // Schedule jobs in priority order, respecting the static assignment:
    // iterate until all placed (precedences may delay).
    let mut remaining: Vec<usize> = shop.priority.clone();
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut next_round = Vec::new();
        for &j in &remaining {
            let ready = preds[j].iter().all(|&q| finish[q].is_some());
            if !ready {
                next_round.push(j);
                continue;
            }
            let release = preds[j]
                .iter()
                .map(|&q| finish[q].unwrap_or(0))
                .max()
                .unwrap_or(0);
            let p = j % shop.processors;
            let start = proc_free[p].max(release);
            let end = start + shop.durations[j];
            proc_free[p] = end;
            finish[j] = Some(end);
            progressed = true;
        }
        assert!(progressed, "precedence cycle in job shop");
        remaining = next_round;
    }
    finish.into_iter().flatten().max().unwrap_or(0)
}

/// Run the anomaly experiment: schedule at WCET and at reduced durations.
///
/// This is the entry point the `e18_faults` resilience bench exercises in
/// CI: the Graham instance is asserted anomalous while the partitioned
/// schedule is asserted robust, on every push.
#[must_use]
pub fn anomaly_experiment(shop: &JobShop, delta: u64) -> AnomalyOutcome {
    let wcet = greedy_makespan(shop);
    let faster = greedy_makespan(&shop.speed_up(delta));
    AnomalyOutcome {
        makespan_wcet: wcet,
        makespan_faster: faster,
        anomalous: faster > wcet,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graham_anomaly_manifests() {
        let shop = JobShop::graham();
        let out = anomaly_experiment(&shop, 1);
        assert!(
            out.anomalous,
            "reducing every duration must increase the greedy makespan: {out:?}"
        );
        assert!(out.makespan_faster > out.makespan_wcet);
    }

    #[test]
    fn partitioned_schedule_is_time_robust() {
        // The deterministic (static) schedule is monotone under speed-ups
        // across a sweep of deltas.
        let shop = JobShop::graham();
        let mut prev = partitioned_makespan(&shop);
        for delta in 1..=3 {
            let faster = partitioned_makespan(&shop.speed_up(delta));
            assert!(
                faster <= prev,
                "deterministic model must be monotone: delta={delta}, {faster} > {prev}"
            );
            prev = faster;
        }
    }

    #[test]
    fn greedy_respects_precedences() {
        let shop = JobShop {
            processors: 1,
            durations: vec![2, 3],
            precedences: vec![(0, 1)],
            priority: vec![1, 0], // priority says job 1 first, but it must wait
        };
        assert_eq!(greedy_makespan(&shop), 5);
    }

    #[test]
    fn single_processor_is_sum() {
        let shop = JobShop {
            processors: 1,
            durations: vec![1, 2, 3],
            precedences: vec![],
            priority: vec![0, 1, 2],
        };
        assert_eq!(greedy_makespan(&shop), 6);
        assert_eq!(partitioned_makespan(&shop), 6);
    }

    #[test]
    fn more_processors_never_hurt_deterministic() {
        let shop = JobShop {
            processors: 2,
            durations: vec![4, 4, 4, 4],
            precedences: vec![],
            priority: vec![0, 1, 2, 3],
        };
        assert_eq!(greedy_makespan(&shop), 8);
    }

    #[test]
    #[should_panic(expected = "precedence cycle")]
    fn cycle_detected() {
        let shop = JobShop {
            processors: 1,
            durations: vec![1, 1],
            precedences: vec![(0, 1), (1, 0)],
            priority: vec![0, 1],
        };
        let _ = greedy_makespan(&shop);
    }
}
