//! `bip-rt` — timed BIP: physical time, resources, and real-time execution.
//!
//! The paper's separation-of-concerns step "from application software to
//! implementation" (§5.2.2) equips models with **resource variables** and
//! studies the relation between an *ideal* model (unlimited resources,
//! zero-time actions) and a *physical* model where a function `φ` assigns to
//! each action the quantity of resources (here: time) needed to execute it.
//! This crate implements that machinery plus the paper's headline
//! observations:
//!
//! * [`timedsys`] — discrete-time execution of a BIP system under a duration
//!   assignment `φ`: firing an interaction occupies its participants for
//!   `φ(a)` ticks; the ideal model is `φ = 0`. Safety of an implementation
//!   is observable-trace inclusion in the ideal model (§5.2.2 / \[1\]).
//! * [`anomaly`] — **timing anomalies** (E8): a nondeterministic scheduled
//!   workload that meets its deadline at worst-case execution times but
//!   *misses* it when one duration shrinks — "safety for WCET does not
//!   guarantee safety for smaller execution times" — and the deterministic
//!   variant which is *time-robust* (monotone), matching the result of \[1\]
//!   that time robustness holds for deterministic models. Exercised in CI by
//!   the `e18_faults` resilience bench alongside the fault-injection
//!   families.
//! * [`delay`] — the unit-delay timed automaton of Fig. 5.3 (E5),
//!   generalized to `k` admissible input changes per time unit; states and
//!   clocks grow linearly with `k` exactly as the paper states.
//! * [`sched`] — fixed-priority and EDF scheduling with classical
//!   schedulability analysis (response-time analysis, utilization bounds) —
//!   the "scheduling theory allows predictable response times" toolbox of
//!   §4.2, realized as executable analysis plus simulation.

pub mod anomaly;
pub mod delay;
pub mod engine;
pub mod sched;
pub mod timedsys;

pub use engine::RtEngine;

pub use anomaly::{
    anomaly_experiment, greedy_makespan, partitioned_makespan, AnomalyOutcome, JobShop,
};
pub use delay::{reference_delay, DelayAutomaton, Edge};
pub use sched::{
    edf_schedulable, rta_fixed_priority, simulate, utilization, SimOutcome, SimPolicy, Task,
};
pub use timedsys::{sampled_safety_check, DurationMap, TimedExecution, TimedReport};
