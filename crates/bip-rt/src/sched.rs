//! Real-time scheduling theory (§4.2): fixed-priority response-time
//! analysis, EDF utilization bound, and a discrete-time simulator to
//! cross-check the analysis — "scheduling theory allows predictable
//! response times for components with known period and time budgets".

/// A periodic task: period, worst-case execution time, relative deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Activation period.
    pub period: u64,
    /// Worst-case execution time.
    pub wcet: u64,
    /// Relative deadline (≤ period for the analyses here).
    pub deadline: u64,
}

impl Task {
    /// Implicit-deadline task (`deadline = period`).
    pub fn implicit(period: u64, wcet: u64) -> Task {
        Task {
            period,
            wcet,
            deadline: period,
        }
    }

    /// Utilization `wcet / period`.
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }
}

/// Total utilization of a task set.
pub fn utilization(tasks: &[Task]) -> f64 {
    tasks.iter().map(Task::utilization).sum()
}

/// Exact response-time analysis for fixed-priority scheduling (tasks given
/// in priority order, highest first). Returns per-task response times, or
/// `None` for a task whose iteration exceeds its deadline (unschedulable).
pub fn rta_fixed_priority(tasks: &[Task]) -> Vec<Option<u64>> {
    let mut out = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        let mut r = t.wcet;
        let result = loop {
            let interference: u64 = tasks[..i]
                .iter()
                .map(|h| r.div_ceil(h.period) * h.wcet)
                .sum();
            let next = t.wcet + interference;
            if next == r {
                break Some(r);
            }
            if next > t.deadline {
                break None;
            }
            r = next;
        };
        out.push(result);
    }
    out
}

/// EDF schedulability for implicit-deadline periodic tasks on one
/// processor: exact iff total utilization ≤ 1 (Liu & Layland).
pub fn edf_schedulable(tasks: &[Task]) -> bool {
    // Use integer arithmetic to avoid float edge cases: Σ C_i/T_i ≤ 1
    // ⟺ Σ C_i · L/T_i ≤ L with L = lcm of periods (bounded here).
    let lcm = tasks.iter().map(|t| t.period).fold(1u64, lcm);
    let demand: u64 = tasks.iter().map(|t| (lcm / t.period) * t.wcet).sum();
    demand <= lcm
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a.max(1)
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// Scheduling policy for the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPolicy {
    /// Fixed priority: task index order (0 = highest).
    FixedPriority,
    /// Earliest deadline first.
    Edf,
}

/// Outcome of a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// First deadline miss `(task, time)`, if any.
    pub first_miss: Option<(usize, u64)>,
    /// Maximum observed response time per task.
    pub max_response: Vec<u64>,
    /// Jobs completed per task.
    pub completed: Vec<u64>,
}

impl SimOutcome {
    /// No deadline was missed during the simulated horizon.
    pub fn schedulable(&self) -> bool {
        self.first_miss.is_none()
    }
}

/// Simulate preemptive uniprocessor scheduling of periodic tasks over
/// `horizon` ticks (synchronous release at 0).
pub fn simulate(tasks: &[Task], policy: SimPolicy, horizon: u64) -> SimOutcome {
    #[derive(Debug, Clone)]
    struct Job {
        task: usize,
        release: u64,
        deadline: u64,
        remaining: u64,
    }
    let n = tasks.len();
    let mut jobs: Vec<Job> = Vec::new();
    let mut max_response = vec![0u64; n];
    let mut completed = vec![0u64; n];
    let mut first_miss = None;
    for now in 0..horizon {
        // Release jobs.
        for (i, t) in tasks.iter().enumerate() {
            if now % t.period == 0 {
                jobs.push(Job {
                    task: i,
                    release: now,
                    deadline: now + t.deadline,
                    remaining: t.wcet,
                });
            }
        }
        // Detect misses.
        for j in &jobs {
            if j.remaining > 0 && now >= j.deadline && first_miss.is_none() {
                first_miss = Some((j.task, now));
            }
        }
        if first_miss.is_some() {
            break;
        }
        // Pick the job to run this tick.
        let pick = match policy {
            SimPolicy::FixedPriority => jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.remaining > 0)
                .min_by_key(|(_, j)| (j.task, j.release))
                .map(|(i, _)| i),
            SimPolicy::Edf => jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.remaining > 0)
                .min_by_key(|(_, j)| (j.deadline, j.task))
                .map(|(i, _)| i),
        };
        if let Some(i) = pick {
            jobs[i].remaining -= 1;
            if jobs[i].remaining == 0 {
                let resp = now + 1 - jobs[i].release;
                let t = jobs[i].task;
                max_response[t] = max_response[t].max(resp);
                completed[t] += 1;
            }
        }
        jobs.retain(|j| j.remaining > 0);
    }
    SimOutcome {
        first_miss,
        max_response,
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rta_classic_example() {
        // Buttazzo-style: T=(7,2), (12,3), (20,5): all schedulable.
        let tasks = [
            Task::implicit(7, 2),
            Task::implicit(12, 3),
            Task::implicit(20, 5),
        ];
        let r = rta_fixed_priority(&tasks);
        assert_eq!(r[0], Some(2));
        assert_eq!(r[1], Some(5));
        // R3 = 5 + ceil/interference... verify against simulation instead.
        assert!(r[2].is_some());
        let sim = simulate(&tasks, SimPolicy::FixedPriority, 840);
        assert!(sim.schedulable());
        // Simulated max response must not exceed the analyzed bound.
        assert!(sim.max_response[2] <= r[2].unwrap());
    }

    #[test]
    fn rta_detects_overload() {
        let tasks = [Task::implicit(4, 3), Task::implicit(8, 3)];
        let r = rta_fixed_priority(&tasks);
        assert_eq!(r[0], Some(3));
        assert_eq!(r[1], None, "utilization 1.125: low task cannot make it");
    }

    #[test]
    fn edf_bound_is_exact_at_one() {
        let ok = [Task::implicit(4, 2), Task::implicit(8, 4)]; // U = 1.0
        assert!(edf_schedulable(&ok));
        let over = [Task::implicit(4, 2), Task::implicit(8, 5)]; // U > 1
        assert!(!edf_schedulable(&over));
    }

    #[test]
    fn edf_beats_fixed_priority_on_full_utilization() {
        // U = 1: EDF schedules it, rate-monotonic misses.
        let tasks = [Task::implicit(4, 2), Task::implicit(8, 4)];
        let edf = simulate(&tasks, SimPolicy::Edf, 200);
        assert!(edf.schedulable(), "{edf:?}");
        let fp = simulate(&tasks, SimPolicy::FixedPriority, 200);
        // FP also works here (harmonic periods); use a non-harmonic set:
        let tasks2 = [Task::implicit(5, 2), Task::implicit(7, 4)]; // U ≈ 0.971
        let edf2 = simulate(&tasks2, SimPolicy::Edf, 500);
        assert!(edf2.schedulable(), "EDF handles U ≤ 1: {edf2:?}");
        let fp2 = simulate(&tasks2, SimPolicy::FixedPriority, 500);
        assert!(!fp2.schedulable(), "RM bound exceeded: FP must miss");
        let _ = fp;
    }

    #[test]
    fn simulation_counts_jobs() {
        let tasks = [Task::implicit(10, 1)];
        let sim = simulate(&tasks, SimPolicy::Edf, 100);
        assert_eq!(sim.completed[0], 10);
        assert_eq!(sim.max_response[0], 1);
    }

    #[test]
    fn analysis_is_sound_vs_simulation_sweep() {
        // Random-ish task sets: whenever RTA says schedulable, the
        // simulation over the hyperperiod agrees.
        let sets = [
            vec![
                Task::implicit(5, 1),
                Task::implicit(10, 3),
                Task::implicit(20, 4),
            ],
            vec![
                Task::implicit(3, 1),
                Task::implicit(6, 2),
                Task::implicit(12, 2),
            ],
            vec![Task::implicit(4, 2), Task::implicit(6, 2)],
        ];
        for tasks in &sets {
            let r = rta_fixed_priority(tasks);
            let hyper = tasks.iter().map(|t| t.period).fold(1, super::lcm);
            let sim = simulate(tasks, SimPolicy::FixedPriority, 2 * hyper);
            if r.iter().all(Option::is_some) {
                assert!(
                    sim.schedulable(),
                    "RTA said yes, simulation missed: {tasks:?}"
                );
                for (i, bound) in r.iter().enumerate() {
                    assert!(
                        sim.max_response[i] <= bound.unwrap(),
                        "response bound violated for task {i}"
                    );
                }
            }
        }
    }
}
