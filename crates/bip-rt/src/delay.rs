//! The unit-delay timed automaton of Fig. 5.3 (E5).
//!
//! The paper models the equational specification `y(t) = x(t − 1)` as a
//! timed automaton with four states and one clock, "provided that there is
//! at most one change of x in one time unit", and remarks that "the number
//! of states and clocks needed to represent a unit delay by a timed
//! automaton increases linearly with the maximum number of changes allowed
//! for x in one time unit".
//!
//! [`DelayAutomaton::new`] builds the generalized automaton for `k`
//! admissible changes per unit: its control structure has `2·(k+1)`
//! locations (current output value × number of pending edges) and `k`
//! clocks (one per in-flight edge); executing it on an admissible input
//! signal reproduces `y(t) = x(t − 1)` exactly (tested against a direct
//! reference implementation).

use std::collections::VecDeque;

/// An input edge: the signal takes value `value` at time `time` (times in
/// micro-ticks; one *time unit* is [`DelayAutomaton::UNIT`] micro-ticks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Absolute time of the change (micro-ticks).
    pub time: u64,
    /// New value of `x`.
    pub value: bool,
}

/// Executable unit-delay timed automaton for at most `k` input changes per
/// time unit.
#[derive(Debug, Clone)]
pub struct DelayAutomaton {
    k: usize,
    /// Pending edges: (expiry time, value) — each occupies one "clock".
    pending: VecDeque<(u64, bool)>,
    /// Current output.
    y: bool,
    /// Last input value seen (edges must alternate).
    x: bool,
    /// Times of recent input changes (for the admissibility check).
    recent: VecDeque<u64>,
}

impl DelayAutomaton {
    /// Micro-ticks per time unit.
    pub const UNIT: u64 = 1000;

    /// Build the automaton for `k ≥ 1` changes per unit; initial state
    /// `x = y = false`.
    pub fn new(k: usize) -> DelayAutomaton {
        assert!(k >= 1, "at least one change per unit");
        DelayAutomaton {
            k,
            pending: VecDeque::new(),
            y: false,
            x: false,
            recent: VecDeque::new(),
        }
    }

    /// Number of control locations of the generated automaton:
    /// output value (2) × pending-edge count (0..=k).
    pub fn num_locations(&self) -> usize {
        2 * (self.k + 1)
    }

    /// Number of clocks: one per potentially in-flight edge.
    pub fn num_clocks(&self) -> usize {
        self.k
    }

    /// Current output `y`.
    pub fn output(&self) -> bool {
        self.y
    }

    /// Feed an input edge. Returns `Err` if the edge violates the
    /// at-most-`k`-changes-per-unit assumption or does not alternate.
    pub fn input(&mut self, edge: Edge) -> Result<(), String> {
        self.release_until(edge.time);
        if edge.value == self.x {
            return Err(format!("edge at {} does not change the value", edge.time));
        }
        while let Some(&t) = self.recent.front() {
            if edge.time.saturating_sub(t) >= Self::UNIT {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        if self.recent.len() >= self.k {
            return Err(format!(
                "more than {} changes within one unit at time {}",
                self.k, edge.time
            ));
        }
        self.recent.push_back(edge.time);
        self.x = edge.value;
        self.pending.push_back((edge.time + Self::UNIT, edge.value));
        debug_assert!(self.pending.len() <= self.k, "clock overflow");
        Ok(())
    }

    /// Advance time to `t`, emitting pending output changes whose clocks
    /// expired.
    pub fn release_until(&mut self, t: u64) {
        while let Some(&(expiry, v)) = self.pending.front() {
            if expiry <= t {
                self.y = v;
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }

    /// Output value at time `t` (advances the automaton).
    pub fn sample(&mut self, t: u64) -> bool {
        self.release_until(t);
        self.y
    }
}

/// Reference implementation: y(t) = x(t − UNIT) computed directly from the
/// edge list.
pub fn reference_delay(edges: &[Edge], t: u64) -> bool {
    if t < DelayAutomaton::UNIT {
        return false;
    }
    let target = t - DelayAutomaton::UNIT;
    let mut v = false;
    for e in edges {
        if e.time <= target {
            v = e.value;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn figure_case_k1_has_four_states_one_clock() {
        let d = DelayAutomaton::new(1);
        assert_eq!(d.num_locations(), 4, "Fig 5.3: four states");
        assert_eq!(d.num_clocks(), 1, "Fig 5.3: one clock τ");
    }

    #[test]
    fn growth_is_linear_in_k() {
        for k in 1..=32 {
            let d = DelayAutomaton::new(k);
            assert_eq!(d.num_locations(), 2 * (k + 1));
            assert_eq!(d.num_clocks(), k);
        }
    }

    #[test]
    fn delays_a_single_edge_by_one_unit() {
        let mut d = DelayAutomaton::new(1);
        d.input(Edge {
            time: 100,
            value: true,
        })
        .unwrap();
        assert!(!d.sample(100));
        assert!(!d.sample(1099));
        assert!(d.sample(1100), "edge appears exactly one unit later");
    }

    #[test]
    fn rejects_non_alternating_edges() {
        let mut d = DelayAutomaton::new(1);
        d.input(Edge {
            time: 0,
            value: true,
        })
        .unwrap();
        assert!(d
            .input(Edge {
                time: 2000,
                value: true
            })
            .is_err());
    }

    #[test]
    fn rejects_too_many_changes_per_unit() {
        let mut d = DelayAutomaton::new(1);
        d.input(Edge {
            time: 0,
            value: true,
        })
        .unwrap();
        assert!(d
            .input(Edge {
                time: 500,
                value: false
            })
            .is_err());
        // k = 2 accepts the same pattern.
        let mut d2 = DelayAutomaton::new(2);
        d2.input(Edge {
            time: 0,
            value: true,
        })
        .unwrap();
        assert!(d2
            .input(Edge {
                time: 500,
                value: false
            })
            .is_ok());
    }

    #[test]
    fn matches_reference_on_random_admissible_signals() {
        for k in [1usize, 2, 4, 8] {
            let mut rng = StdRng::seed_from_u64(k as u64);
            let mut edges = Vec::new();
            let mut t = 0u64;
            let mut v = false;
            // Build an admissible signal: consecutive changes separated by
            // at least UNIT/k (so at most k per unit).
            for _ in 0..50 {
                t += DelayAutomaton::UNIT / k as u64 + rng.gen_range(1..DelayAutomaton::UNIT);
                v = !v;
                edges.push(Edge { time: t, value: v });
            }
            let mut d = DelayAutomaton::new(k);
            let mut next_edge = 0usize;
            for sample_t in (0..(t + 2 * DelayAutomaton::UNIT)).step_by(137) {
                while next_edge < edges.len() && edges[next_edge].time <= sample_t {
                    d.input(edges[next_edge]).unwrap();
                    next_edge += 1;
                }
                assert_eq!(
                    d.sample(sample_t),
                    reference_delay(&edges[..next_edge], sample_t),
                    "k={k} t={sample_t}"
                );
            }
        }
    }
}
