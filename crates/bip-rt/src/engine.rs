//! The real-time engine: the unified [`Engine`] trait over
//! [`TimedExecution`].
//!
//! [`RtEngine`] is the third interchangeable backend of the execution API
//! (§5.6's single-thread real-time engine): steps are chosen by the shared
//! [`ExecContext`]'s policy among the *fireable* steps (enabled ∧ all
//! participants idle), time advances automatically when nothing is
//! fireable, and monitors/trace behave exactly as in the sequential and
//! threaded engines.

use bip_core::{State, StatePred, Step, System};
use bip_engine::{Engine, ExecContext, Policy, RunReport};

use crate::timedsys::{DurationMap, TimedExecution};

/// Real-time execution engine over a duration assignment φ.
#[derive(Debug)]
pub struct RtEngine<'a, P: Policy> {
    exec: TimedExecution<'a>,
    ctx: ExecContext<P>,
    opts: Vec<(Step, State)>,
}

impl<'a, P: Policy> RtEngine<'a, P> {
    /// Start at the initial state, time 0, everyone idle.
    pub fn new(sys: &'a System, phi: DurationMap, policy: P) -> RtEngine<'a, P> {
        RtEngine {
            exec: TimedExecution::new(sys, phi),
            ctx: ExecContext::new(policy),
            opts: Vec::new(),
        }
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.exec.now()
    }

    /// The underlying timed execution.
    pub fn timed(&self) -> &TimedExecution<'a> {
        &self.exec
    }

    /// The shared execution context (policy, monitors, trace).
    pub fn context(&self) -> &ExecContext<P> {
        &self.ctx
    }

    /// Mutable access to the execution context.
    pub fn context_mut(&mut self) -> &mut ExecContext<P> {
        &mut self.ctx
    }

    /// Attach a safety monitor.
    pub fn add_monitor(&mut self, name: impl Into<String>, pred: StatePred) -> &mut Self {
        self.ctx.add_monitor(name, pred);
        self
    }

    /// Fire one step, advancing time as needed; `None` when nothing can
    /// ever fire again (timed deadlock).
    pub fn step(&mut self) -> Option<Step> {
        loop {
            self.exec.fireable_into(&mut self.opts);
            if self.opts.is_empty() {
                if !self.exec.advance() {
                    return None;
                }
                continue;
            }
            let sys = self.exec.system();
            let i = self
                .ctx
                .policy
                .pick(sys, self.exec.state(), &self.opts)
                .min(self.opts.len() - 1);
            let (step, next) = self.opts.swap_remove(i);
            self.exec.fire(&step, next);
            self.ctx.note_step(self.exec.system(), &step);
            return Some(step);
        }
    }

    /// Execute up to `budget` steps, checking monitors on every visited
    /// state (same shared loop as the sequential and threaded engines).
    pub fn run(&mut self, budget: usize) -> RunReport {
        bip_engine::run_loop!(
            self,
            budget,
            |eng| eng.step(),
            self.exec.system(),
            self.exec.state()
        )
    }

    /// Summary of everything executed so far.
    pub fn report(&self) -> RunReport {
        self.ctx.report()
    }
}

impl<P: Policy> Engine for RtEngine<'_, P> {
    fn system(&self) -> &System {
        self.exec.system()
    }

    fn state(&self) -> &State {
        self.exec.state()
    }

    fn step(&mut self) -> Option<Step> {
        RtEngine::step(self)
    }

    fn run(&mut self, budget: usize) -> RunReport {
        RtEngine::run(self, budget)
    }

    fn report(&self) -> RunReport {
        RtEngine::report(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::dining_philosophers;
    use bip_engine::{FirstEnabled, RandomPolicy};

    #[test]
    fn rt_engine_runs_under_ideal_time() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut e = RtEngine::new(&sys, DurationMap::ideal(), RandomPolicy::new(3));
        let r = e.run(100);
        assert_eq!(r.steps, 100);
        assert_eq!(e.now(), 0, "φ = 0: no time passes");
        assert_eq!(e.report().steps, 100);
    }

    #[test]
    fn rt_engine_advances_time_under_durations() {
        let sys = dining_philosophers(2, false).unwrap();
        let phi = DurationMap::from_names(&sys, &[("eat0", 10), ("eat1", 10)]);
        let mut e = RtEngine::new(&sys, phi, FirstEnabled);
        let r = e.run(40);
        assert_eq!(r.steps, 40);
        assert!(e.now() > 0, "busy windows force time to advance");
    }

    #[test]
    fn rt_engine_word_replays_untimed() {
        let sys = dining_philosophers(3, false).unwrap();
        let phi =
            DurationMap::from_names(&sys, &[("eat0", 5), ("eat1", 3), ("eat2", 7), ("rel0", 1)]);
        let mut e = RtEngine::new(&sys, phi, RandomPolicy::new(11));
        e.run(60);
        let word = e.context().trace.observable_word();
        assert!(!word.is_empty());
        let mut st = sys.initial_state();
        for label in &word {
            let succ = sys.successors(&st);
            let hit = succ
                .iter()
                .find(|(s, _)| sys.step_label(s) == Some(label.as_str()));
            st = hit
                .expect("timed word must replay in the ideal model")
                .1
                .clone();
        }
    }

    #[test]
    fn rt_engine_monitors_via_context() {
        let sys = dining_philosophers(2, false).unwrap();
        let mutex = bip_core::StatePred::mutex(&sys, [(0, "eating"), (1, "eating")]);
        let phi = DurationMap::from_names(&sys, &[("eat0", 4), ("eat1", 4)]);
        let mut e = RtEngine::new(&sys, phi, RandomPolicy::new(2));
        e.add_monitor("mutex", mutex);
        let r = e.run(200);
        assert_eq!(r.monitor_violations, vec![("mutex".to_string(), 0)]);
    }

    #[test]
    fn engines_are_interchangeable_behind_the_trait() {
        // The same driver code runs sequential, threaded, and rt backends.
        fn drive(engine: &mut dyn Engine, budget: usize) -> usize {
            engine.run(budget).steps
        }
        let sys = dining_philosophers(3, false).unwrap();
        let mut seq = bip_engine::SequentialEngine::new(sys.clone(), RandomPolicy::new(1));
        let mut thr = bip_engine::ThreadedEngine::new(sys.clone(), RandomPolicy::new(2));
        let mut rt = RtEngine::new(&sys, DurationMap::ideal(), RandomPolicy::new(3));
        assert_eq!(drive(&mut seq, 50), 50);
        assert_eq!(drive(&mut thr, 50), 50);
        assert_eq!(drive(&mut rt, 50), 50);
    }
}
