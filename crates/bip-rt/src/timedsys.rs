//! Discrete-time execution of BIP systems under a duration assignment φ.
//!
//! States of the timed semantics are `(untimed state, now, busy-until per
//! component)`. An interaction can fire when every participant is idle; it
//! then occupies all participants for `φ(a)` ticks. When nothing can fire,
//! time advances to the next release instant. `φ = 0` recovers the ideal
//! (zero-time) model, so "the two models coincide and performance is
//! infinite" (§5.2.2).

use std::collections::HashMap;

use bip_core::{ConnId, EnabledSet, State, Step, System};

/// Duration assignment φ: connector → execution time in ticks.
///
/// Connectors absent from the map take duration 0.
#[derive(Debug, Clone, Default)]
pub struct DurationMap {
    map: HashMap<ConnId, u64>,
}

impl DurationMap {
    /// The ideal model: every action is instantaneous.
    pub fn ideal() -> DurationMap {
        DurationMap::default()
    }

    /// Build from `(connector name, duration)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a name does not resolve (test/bench convenience).
    pub fn from_names(sys: &System, pairs: &[(&str, u64)]) -> DurationMap {
        let mut map = HashMap::new();
        for (name, d) in pairs {
            let id = sys
                .connector_id(name)
                .unwrap_or_else(|| panic!("no connector named {name:?}"));
            map.insert(id, *d);
        }
        DurationMap { map }
    }

    /// Set a duration.
    pub fn set(&mut self, conn: ConnId, d: u64) {
        self.map.insert(conn, d);
    }

    /// Duration of a connector.
    pub fn get(&self, conn: ConnId) -> u64 {
        self.map.get(&conn).copied().unwrap_or(0)
    }

    /// Pointwise comparison: `self ≤ other` (faster or equal everywhere).
    pub fn le(&self, other: &DurationMap, sys: &System) -> bool {
        (0..sys.num_connectors() as u32).all(|i| self.get(ConnId(i)) <= other.get(ConnId(i)))
    }
}

/// Result of a timed run.
#[derive(Debug, Clone)]
pub struct TimedReport {
    /// `(time, label)` for every observable interaction fired.
    pub timed_word: Vec<(u64, String)>,
    /// Total interactions fired (observable or not).
    pub fired: usize,
    /// Final time.
    pub end_time: u64,
    /// `true` if the run stopped because nothing could ever fire again.
    pub deadlocked: bool,
}

impl TimedReport {
    /// The untimed observable word.
    pub fn word(&self) -> Vec<String> {
        self.timed_word.iter().map(|(_, l)| l.clone()).collect()
    }
}

/// A timed executor over a BIP system.
///
/// Internally maintains an incremental [`EnabledSet`]: after a fire, only
/// connectors watching the participants that moved are re-evaluated when
/// the next fireable set is computed.
#[derive(Debug)]
pub struct TimedExecution<'a> {
    sys: &'a System,
    phi: DurationMap,
    state: State,
    now: u64,
    busy_until: Vec<u64>,
    es: EnabledSet,
    succ_scratch: Vec<(Step, State)>,
}

impl<'a> TimedExecution<'a> {
    /// Start at the initial state, time 0, everyone idle.
    pub fn new(sys: &'a System, phi: DurationMap) -> TimedExecution<'a> {
        TimedExecution {
            sys,
            phi,
            state: sys.initial_state(),
            now: 0,
            busy_until: vec![0; sys.num_components()],
            es: sys.new_enabled_set(),
            succ_scratch: Vec::new(),
        }
    }

    /// The system being executed.
    pub fn system(&self) -> &System {
        self.sys
    }

    /// Current time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Current untimed state.
    pub fn state(&self) -> &State {
        &self.state
    }

    /// Steps currently fireable, written into `out`: enabled interactions
    /// whose participants are all idle (internal steps need their component
    /// idle). Buffer-reusing; the incremental enabled set re-evaluates only
    /// connectors dirtied by the last fire.
    pub fn fireable_into(&mut self, out: &mut Vec<(Step, State)>) {
        let scratch = &mut self.succ_scratch;
        self.sys.successors_into(&self.state, &mut self.es, scratch);
        out.clear();
        out.extend(scratch.drain(..).filter(|(step, _)| match step {
            Step::Interaction { interaction, .. } => {
                let eps = &self.sys.connector_endpoints(interaction.connector);
                interaction
                    .endpoints
                    .iter()
                    .all(|&i| self.busy_until[eps[i].0] <= self.now)
            }
            Step::Internal { component, .. } => self.busy_until[*component] <= self.now,
        }));
    }

    /// Steps currently fireable (allocating compatibility form of
    /// [`TimedExecution::fireable_into`]).
    pub fn fireable(&mut self) -> Vec<(Step, State)> {
        let mut out = Vec::new();
        self.fireable_into(&mut out);
        out
    }

    /// Fire a chosen step (as returned by [`TimedExecution::fireable_into`]),
    /// occupying its participants for φ.
    pub fn fire(&mut self, step: &Step, next: State) {
        match step {
            Step::Interaction { interaction, .. } => {
                let d = self.phi.get(interaction.connector);
                let eps = self.sys.connector_endpoints(interaction.connector);
                for &i in &interaction.endpoints {
                    self.busy_until[eps[i].0] = self.now + d;
                }
                for &i in &interaction.endpoints {
                    self.es.invalidate_component(self.sys, eps[i].0);
                }
            }
            Step::Internal { component, .. } => {
                self.es.invalidate_component(self.sys, *component);
            }
        }
        self.state = next;
    }

    /// Advance time to the next instant at which some component becomes
    /// idle. Returns `false` if no component is busy (time cannot progress
    /// usefully).
    pub fn advance(&mut self) -> bool {
        let next = self
            .busy_until
            .iter()
            .copied()
            .filter(|&t| t > self.now)
            .min();
        match next {
            Some(t) => {
                self.now = t;
                true
            }
            None => false,
        }
    }

    /// Run with a pick function until `horizon` time or deadlock; greedy:
    /// fires whenever something is fireable, else advances time.
    pub fn run<F>(&mut self, horizon: u64, max_steps: usize, mut pick: F) -> TimedReport
    where
        F: FnMut(&[(Step, State)]) -> usize,
    {
        let mut timed_word = Vec::new();
        let mut fired = 0usize;
        let mut deadlocked = false;
        let mut opts = Vec::new();
        while self.now <= horizon && fired < max_steps {
            self.fireable_into(&mut opts);
            if opts.is_empty() {
                if !self.advance() {
                    // Nothing busy and nothing fireable: true deadlock.
                    self.fireable_into(&mut opts);
                    deadlocked = opts.is_empty();
                    break;
                }
                continue;
            }
            let i = pick(&opts).min(opts.len() - 1);
            let (step, next) = opts.swap_remove(i);
            if let Some(l) = self.sys.step_label(&step) {
                timed_word.push((self.now, l.to_string()));
            }
            self.fire(&step, next);
            fired += 1;
        }
        TimedReport {
            timed_word,
            fired,
            end_time: self.now,
            deadlocked,
        }
    }
}

/// Check that every observable word of the physical model (bounded run set
/// explored breadth-first over pick choices is expensive; here: a sampled
/// set of seeded greedy runs) also occurs as a word of the ideal model —
/// the "safe implementation" condition of §5.2.2 in its testable form.
pub fn sampled_safety_check(sys: &System, phi: &DurationMap, runs: u64, steps: usize) -> bool {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut phys = TimedExecution::new(sys, phi.clone());
        let report = phys.run(u64::MAX, steps, |opts| rng.gen_range(0..opts.len()));
        // The word must be replayable in the ideal (untimed) semantics.
        let mut st = sys.initial_state();
        for (_, label) in &report.timed_word {
            let succ = sys.successors(&st);
            match succ
                .iter()
                .find(|(s, _)| sys.step_label(s) == Some(label.as_str()))
            {
                Some((_, next)) => st = next.clone(),
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bip_core::dining_philosophers;

    #[test]
    fn ideal_model_runs_at_time_zero() {
        let sys = dining_philosophers(3, false).unwrap();
        let mut ex = TimedExecution::new(&sys, DurationMap::ideal());
        let r = ex.run(1000, 50, |_| 0);
        assert_eq!(r.end_time, 0, "φ = 0: infinite performance, no time passes");
        assert_eq!(r.fired, 50);
    }

    #[test]
    fn durations_serialize_conflicting_interactions() {
        let sys = dining_philosophers(2, false).unwrap();
        let phi = DurationMap::from_names(
            &sys,
            &[("eat0", 10), ("eat1", 10), ("rel0", 1), ("rel1", 1)],
        );
        let mut ex = TimedExecution::new(&sys, phi);
        let r = ex.run(100, 1000, |_| 0);
        // Forks are shared: the two philosophers alternate; each eat+rel
        // cycle takes 11 ticks.
        assert!(r.end_time >= 11 * (r.fired as u64 / 2).saturating_sub(1) / 2);
        assert!(r.fired > 4);
    }

    #[test]
    fn physical_words_are_ideal_words() {
        let sys = dining_philosophers(3, false).unwrap();
        let phi = DurationMap::from_names(
            &sys,
            &[
                ("eat0", 5),
                ("eat1", 3),
                ("eat2", 7),
                ("rel0", 1),
                ("rel1", 1),
                ("rel2", 2),
            ],
        );
        assert!(sampled_safety_check(&sys, &phi, 10, 60));
    }

    #[test]
    fn duration_map_comparison() {
        let sys = dining_philosophers(2, false).unwrap();
        let slow = DurationMap::from_names(&sys, &[("eat0", 10)]);
        let fast = DurationMap::from_names(&sys, &[("eat0", 5)]);
        assert!(fast.le(&slow, &sys));
        assert!(!slow.le(&fast, &sys));
        assert!(DurationMap::ideal().le(&fast, &sys));
    }

    #[test]
    fn busy_components_block_interactions() {
        let sys = dining_philosophers(2, false).unwrap();
        let phi = DurationMap::from_names(&sys, &[("eat0", 100)]);
        let mut ex = TimedExecution::new(&sys, phi);
        // Fire eat0 (both forks + phil0 busy for 100).
        let opts = ex.fireable();
        let eat0 = opts
            .iter()
            .position(|(s, _)| sys.step_label(s) == Some("eat0"))
            .unwrap();
        let (step, next) = opts[eat0].clone();
        ex.fire(&step, next);
        // phil1 needs both forks, which are busy: nothing fireable now.
        assert!(ex.fireable().is_empty());
        assert!(ex.advance());
        assert_eq!(ex.now(), 100);
        assert!(
            !ex.fireable().is_empty(),
            "after the busy window, rel0 can fire"
        );
    }
}
