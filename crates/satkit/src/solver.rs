//! The CDCL solver core.

use crate::{Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a solve verdict should be inspected, not dropped"]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The solve was cut short by a resource limit ([`SolveLimits`]) or an
    /// external interrupt flag ([`Solver::set_interrupt`]) before reaching a
    /// verdict. The formula's status is undetermined; the solver state stays
    /// valid and a later (larger-budget) solve may continue where learning
    /// left off.
    Unknown,
}

impl SolveResult {
    /// `true` if the result is [`SolveResult::Sat`].
    #[must_use]
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }

    /// `true` if the result is [`SolveResult::Unsat`].
    #[must_use]
    pub fn is_unsat(self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// `true` if the result is [`SolveResult::Unknown`].
    #[must_use]
    pub fn is_unknown(self) -> bool {
        matches!(self, SolveResult::Unknown)
    }
}

/// Resource ceilings for a single [`Solver::solve_limited`] call.
///
/// Ceilings are *per call*: they bound how much additional work this solve
/// may do on top of the cumulative [`Solver::conflicts`] /
/// [`Solver::propagations`] counters. `None` means unlimited. A tripped
/// ceiling yields [`SolveResult::Unknown`], never a wrong verdict, and is
/// deterministic for a given formula and assumption sequence (unlike
/// wall-clock deadlines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveLimits {
    /// Maximum conflicts this call may spend.
    pub max_conflicts: Option<u64>,
    /// Maximum unit propagations this call may spend.
    pub max_propagations: Option<u64>,
}

impl SolveLimits {
    /// No limits: `solve_limited` behaves exactly like `solve_with`.
    #[must_use]
    pub fn unlimited() -> SolveLimits {
        SolveLimits::default()
    }

    /// Limit the conflicts this call may spend.
    #[must_use]
    pub fn conflicts(mut self, n: u64) -> SolveLimits {
        self.max_conflicts = Some(n);
        self
    }

    /// Limit the unit propagations this call may spend.
    #[must_use]
    pub fn propagations(mut self, n: u64) -> SolveLimits {
        self.max_propagations = Some(n);
        self
    }
}

/// When to restart the search (throw away the current partial assignment
/// and re-descend with fresh decision ordering).
///
/// Restarts trade re-derivation cost against escaping a bad subtree. The
/// right trade-off depends on the workload, so the policy is a per-solver
/// config ([`Solver::set_restart_policy`]):
///
/// * [`RestartPolicy::Luby`] — the classic reluctant-doubling schedule;
///   robust on short solves (D-Finder's per-seed trap instances) where
///   adaptive state has no time to calibrate.
/// * [`RestartPolicy::Glucose`] — restart when the *fast* exponential
///   moving average of recent learnt-clause LBDs exceeds the *slow* one by
///   `threshold_percent` (the search is currently producing worse-than-
///   typical glue, so the subtree is bad). Suited to one long persistent
///   solve (BMC deep unrolls).
/// * [`RestartPolicy::Hybrid`] — alternate Glucose-adaptive phases with
///   Luby stabilization phases every `phase_conflicts` conflicts, glucose-4
///   style: adaptive phases drill through UNSAT cores, stable phases let
///   SAT-leaning assignments survive long enough to complete. The default.
///
/// All policies are deterministic: restart points are a pure function of
/// the conflict sequence, so solver runs stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Luby sequence scaled by `base` conflicts (1·base, 1·base, 2·base, …).
    Luby {
        /// Conflicts per Luby unit.
        base: u64,
    },
    /// Glucose-style adaptive restarts from fast/slow LBD EMAs.
    Glucose {
        /// Minimum conflicts between restarts (the EMA gate is only
        /// consulted after this many conflicts since the last restart).
        min_interval: u64,
        /// Restart when `ema_fast * 100 > ema_slow * threshold_percent`.
        threshold_percent: u64,
    },
    /// Alternate [`RestartPolicy::Glucose`] phases with
    /// [`RestartPolicy::Luby`] stabilization phases.
    Hybrid {
        /// Conflicts per Luby unit in stabilization phases.
        base: u64,
        /// Minimum conflicts between adaptive restarts.
        min_interval: u64,
        /// Adaptive trigger: `ema_fast * 100 > ema_slow * threshold_percent`.
        threshold_percent: u64,
        /// Conflicts per phase before switching adaptive <-> stable.
        phase_conflicts: u64,
    },
}

impl RestartPolicy {
    /// The classic Luby schedule with the conventional 64-conflict base.
    #[must_use]
    pub fn luby() -> RestartPolicy {
        RestartPolicy::Luby { base: 64 }
    }

    /// Glucose-style adaptive restarts with conventional parameters
    /// (50-conflict minimum interval, 1.25× threshold).
    #[must_use]
    pub fn glucose() -> RestartPolicy {
        RestartPolicy::Glucose {
            min_interval: 50,
            threshold_percent: 125,
        }
    }

    /// The default: adaptive restarts alternating with Luby stabilization
    /// every 5000 conflicts.
    #[must_use]
    pub fn hybrid() -> RestartPolicy {
        RestartPolicy::Hybrid {
            base: 64,
            min_interval: 50,
            threshold_percent: 125,
            phase_conflicts: 5000,
        }
    }
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy::hybrid()
    }
}

/// Incremental Luby-sequence generator (Knuth's "reluctant doubling":
/// `(u, v) -> if u & -u == v { (u+1, 1) } else { (u, 2v) }` yields
/// 1 1 2 1 1 2 4 …). O(1) per step — the solver carries this state across
/// restarts instead of recomputing the sequence from the restart index.
#[derive(Debug, Clone, Copy)]
struct LubyGen {
    u: u64,
    v: u64,
}

impl LubyGen {
    fn new() -> LubyGen {
        LubyGen { u: 1, v: 1 }
    }

    fn next(&mut self) -> u64 {
        let out = self.v;
        if self.u & self.u.wrapping_neg() == self.v {
            self.u += 1;
            self.v = 1;
        } else {
            self.v *= 2;
        }
        out
    }
}

/// Per-solve restart driver: policy + Luby generator + phase bookkeeping.
#[derive(Debug)]
struct RestartCtl {
    policy: RestartPolicy,
    luby: LubyGen,
    /// Current Luby interval (conflicts until restart, Luby-mode phases).
    interval: u64,
    /// Conflicts since the last restart.
    since: u64,
    /// Hybrid only: currently in a Luby stabilization phase?
    stable: bool,
    /// Hybrid only: conflicts left in the current phase.
    phase_left: u64,
}

impl RestartCtl {
    fn new(policy: RestartPolicy) -> RestartCtl {
        let mut luby = LubyGen::new();
        let (interval, stable, phase_left) = match policy {
            RestartPolicy::Luby { base } => (luby.next() * base, true, u64::MAX),
            RestartPolicy::Glucose { .. } => (0, false, u64::MAX),
            // Hybrid starts adaptive (glucose-4 style) and stabilizes later.
            RestartPolicy::Hybrid {
                base,
                phase_conflicts,
                ..
            } => (luby.next() * base, false, phase_conflicts),
        };
        RestartCtl {
            policy,
            luby,
            interval,
            since: 0,
            stable,
            phase_left,
        }
    }

    fn on_conflict(&mut self) {
        self.since += 1;
        if let RestartPolicy::Hybrid {
            phase_conflicts, ..
        } = self.policy
        {
            self.phase_left -= 1;
            if self.phase_left == 0 {
                self.stable = !self.stable;
                self.phase_left = phase_conflicts;
                self.since = 0;
            }
        }
    }

    fn should_restart(&self, ema_fast: f64, ema_slow: f64) -> bool {
        let adaptive = |min_interval: u64, threshold_percent: u64| {
            self.since >= min_interval && ema_fast * 100.0 > ema_slow * threshold_percent as f64
        };
        match self.policy {
            RestartPolicy::Luby { .. } => self.since >= self.interval,
            RestartPolicy::Glucose {
                min_interval,
                threshold_percent,
            } => adaptive(min_interval, threshold_percent),
            RestartPolicy::Hybrid {
                min_interval,
                threshold_percent,
                ..
            } => {
                if self.stable {
                    self.since >= self.interval
                } else {
                    adaptive(min_interval, threshold_percent)
                }
            }
        }
    }

    fn on_restart(&mut self) {
        self.since = 0;
        let base = match self.policy {
            RestartPolicy::Luby { base } => Some(base),
            RestartPolicy::Hybrid { base, .. } if self.stable => Some(base),
            _ => None,
        };
        if let Some(base) = base {
            self.interval = self.luby.next() * base;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

/// Learnt-clause tier, derived from the clause's literal-block distance
/// (LBD, "glue"): the number of distinct decision levels among its
/// literals. Low-LBD clauses chain propagations across few levels and are
/// empirically the ones worth keeping forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Tier {
    /// LBD ≤ 2 ("glue clauses"): kept forever, never reduced.
    Core = 0,
    /// 2 < LBD ≤ 6: kept, but demoted to Local if untouched for a whole
    /// reduction round.
    Mid = 1,
    /// LBD > 6 (or demoted): the reduction pool — worst half dropped when
    /// the learnt ceiling trips.
    Local = 2,
}

/// Core tier: LBD at or below this is kept forever.
const CORE_LBD_MAX: u32 = 2;
/// Mid tier ceiling; above this a learnt clause starts in the Local pool.
const MID_LBD_MAX: u32 = 6;
/// Geometric growth factor of the learnt-clause ceiling per reduction.
const LEARNT_CEILING_GROWTH: f64 = 1.1;
/// Default initial learnt-clause ceiling (Local-tier clauses) unless
/// overridden by [`Solver::set_learnt_ceiling`]; the per-formula initial
/// ceiling is `max(this, clauses/3)`.
const LEARNT_CEILING_MIN: f64 = 2000.0;

fn tier_for(lbd: u32) -> Tier {
    if lbd <= CORE_LBD_MAX {
        Tier::Core
    } else if lbd <= MID_LBD_MAX {
        Tier::Mid
    } else {
        Tier::Local
    }
}

/// Reference to a clause in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClauseRef(u32);

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Activity for clause-DB reduction (tie-break within equal LBD).
    activity: f64,
    /// Literal-block distance at learning time, updated downward whenever
    /// the clause is touched during conflict analysis. 0 for problem
    /// clauses (whose LBD is never consulted).
    lbd: u32,
    /// Current tier (meaningful for learnt clauses only).
    tier: Tier,
    /// Touched since the last reduction round with an improved LBD:
    /// spared from that round, then the flag is cleared.
    protected: bool,
}

/// Indexed binary max-heap over variables, ordered by activity with
/// deterministic index tie-breaking (lower index wins, matching the old
/// linear scan's first-max choice). Replaces the O(vars) scan per decision
/// in `pick_branch_var`: decisions are O(log vars), bumps are O(log vars),
/// and backtracking reinserts lazily.
#[derive(Debug, Default)]
struct VarOrder {
    /// Heap of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `ABSENT`.
    pos: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarOrder {
    /// `a` orders strictly before `b` (max-heap: higher activity first,
    /// then lower index).
    #[inline]
    fn better(activity: &[f64], a: u32, b: u32) -> bool {
        let (aa, ab) = (activity[a as usize], activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    /// Register a freshly created variable and insert it.
    fn push_var(&mut self, activity: &[f64]) {
        let v = self.pos.len() as u32;
        self.pos.push(ABSENT);
        self.insert(v, activity);
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != ABSENT
    }

    fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Restore the heap property after `v`'s activity increased.
    fn bumped(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize] as usize, activity);
        }
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::better(activity, self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && Self::better(activity, self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && Self::better(activity, self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: ClauseRef,
    /// The other watched literal; lets us skip clause inspection when it is
    /// already true (blocking literal optimization).
    blocker: Lit,
}

/// Per-variable trail bookkeeping.
#[derive(Debug, Clone, Copy)]
struct VarInfo {
    reason: Option<ClauseRef>,
    level: u32,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the crate docs for an example. Clauses may be added at any time before
/// [`Solver::solve`]; solving is restartable (assumptions are supported via
/// [`Solver::solve_with`]).
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit.index()] = clauses watching `lit` (i.e. containing `!lit`
    /// watched... we watch the literal itself: watches are indexed by the
    /// *falsified* literal).
    watches: Vec<Vec<Watch>>,
    assigns: Vec<Value>,
    var_info: Vec<VarInfo>,
    /// Saved phases for phase-saving.
    phase: Vec<bool>,
    activity: Vec<f64>,
    /// Decision order: indexed max-heap on `activity` (lazy deletion of
    /// assigned variables; backtracking reinserts).
    order: VarOrder,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Set when an empty clause (or conflicting units) was added.
    ok: bool,
    /// Statistics: number of conflicts encountered so far.
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
    /// Number of learnt clauses currently in the database (maintained
    /// incrementally so [`Solver::num_learnts`] is O(1)).
    num_learnts: usize,
    /// Learnt clauses per tier (`[Core, Mid, Local]`), maintained
    /// incrementally across attach / promotion / demotion / reduction.
    tier_counts: [usize; 3],
    /// Restart schedule for subsequent solve calls.
    restart_policy: RestartPolicy,
    /// Live restart controller. Kept across solve calls for the hybrid
    /// policy (its adaptive/stable phase schedule spans queries on a
    /// persistent solver); recreated per call otherwise.
    restart_ctl: Option<RestartCtl>,
    /// Level-stamp scratch for O(|clause|) LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_token: u64,
    /// Cumulative sum/count of learnt-clause LBDs (drives `avg_lbd`).
    lbd_sum: u64,
    lbd_count: u64,
    /// Fast (1/32) and slow (1/4096) exponential moving averages of recent
    /// learnt-clause LBDs; the adaptive restart signal.
    ema_fast: f64,
    ema_slow: f64,
    /// Local-tier clause ceiling driving `reduce_db`; grows geometrically.
    /// 0.0 = not yet initialized (first solve derives it from formula size).
    max_learnts: f64,
    /// Number of clause-DB reductions performed.
    reduces: u64,
    /// External interrupt flag, polled once per search-loop iteration.
    interrupt: Option<Arc<AtomicBool>>,
    /// Failing assumption subset of the most recent UNSAT `solve_with` /
    /// `solve_limited` call (empty after Sat/Unknown or a root-level UNSAT).
    failed: Vec<Lit>,
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Number of variables created so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learnt) currently in the database.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt clauses currently in the database (shrinks when
    /// clause-DB reduction discards inactive learnts).
    #[must_use]
    pub fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Number of conflicts encountered across all `solve` calls.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made across all `solve` calls.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of unit propagations performed across all `solve` calls.
    #[must_use]
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Number of restarts performed across all `solve` calls.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Number of learnt-clause database reductions performed.
    #[must_use]
    pub fn reduces(&self) -> u64 {
        self.reduces
    }

    /// Mean literal-block distance (LBD, "glue") over every clause learnt
    /// so far; `0.0` before the first conflict. Low values mean the search
    /// is producing strong, level-local clauses.
    #[must_use]
    pub fn avg_lbd(&self) -> f64 {
        if self.lbd_count == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.lbd_count as f64
        }
    }

    /// [`Solver::avg_lbd`] in fixed-point milli-units (`avg * 1000`,
    /// truncated). Integer-exact and deterministic, so reports that derive
    /// `Eq` can carry it.
    #[must_use]
    pub fn avg_lbd_milli(&self) -> u64 {
        (self.lbd_sum * 1000)
            .checked_div(self.lbd_count)
            .unwrap_or(0)
    }

    /// Fast exponential moving average (1/32 step) of recent learnt-clause
    /// LBDs — the numerator of the adaptive restart signal.
    #[must_use]
    pub fn lbd_ema_fast(&self) -> f64 {
        self.ema_fast
    }

    /// Slow exponential moving average (1/4096 step) of learnt-clause
    /// LBDs — the adaptive restart baseline.
    #[must_use]
    pub fn lbd_ema_slow(&self) -> f64 {
        self.ema_slow
    }

    /// Current learnt-clause counts per tier: `(core, mid, local)`. Core
    /// (LBD ≤ 2) is kept forever; Mid (LBD ≤ 6) survives reductions but
    /// demotes to Local when untouched for a round; Local is the reduction
    /// pool.
    #[must_use]
    pub fn tier_sizes(&self) -> (usize, usize, usize) {
        (
            self.tier_counts[0],
            self.tier_counts[1],
            self.tier_counts[2],
        )
    }

    /// The restart schedule used by subsequent solve calls.
    #[must_use]
    pub fn restart_policy(&self) -> RestartPolicy {
        self.restart_policy
    }

    /// Set the restart schedule for subsequent solve calls (the default is
    /// [`RestartPolicy::hybrid`]). Takes effect at the next solve call;
    /// adaptive EMA state persists across calls either way.
    pub fn set_restart_policy(&mut self, policy: RestartPolicy) {
        self.restart_policy = policy;
        // Drop any carried schedule: the next solve starts the new policy
        // from its initial phase.
        self.restart_ctl = None;
    }

    /// Override the Local-tier learnt-clause ceiling that triggers
    /// database reduction (it still grows geometrically from here). The
    /// default is derived from the formula size at the first solve call.
    /// Mainly a testing/tuning hook — lowering it forces frequent
    /// reductions.
    pub fn set_learnt_ceiling(&mut self, ceiling: usize) {
        self.max_learnts = (ceiling as f64).max(1.0);
    }

    /// Install (or clear) an external interrupt flag.
    ///
    /// While set, every solve variant polls the flag once per search-loop
    /// iteration and returns [`SolveResult::Unknown`] as soon as it reads
    /// `true`. The flag is shared (callers keep a clone and set it from
    /// another thread); it persists across solve calls and is *not* reset by
    /// the solver, so a cancelled token keeps cutting subsequent solves
    /// short until the caller clears it.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// The failing assumption subset of the most recent solve call, in the
    /// order the assumptions were passed.
    ///
    /// After an [`SolveResult::Unsat`] answer from [`Solver::solve_with`] /
    /// [`Solver::solve_limited`], this is a subset `C` of the assumptions
    /// such that the formula is already unsatisfiable under `C` alone
    /// (computed MiniSat-`analyzeFinal` style from the final conflict). An
    /// *empty* core after UNSAT-under-assumptions means the formula is
    /// unsatisfiable regardless of any assumptions. After Sat/Unknown the
    /// slice is empty.
    #[must_use]
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Snapshot of the full assignment after a [`SolveResult::Sat`] answer.
    ///
    /// Index `i` holds the value of `Var(i)`; `None` marks variables left
    /// unassigned (created after solving, or before any solve). Taking one
    /// snapshot is cheaper than calling [`Solver::value`] per variable in a
    /// decode loop, and the snapshot stays valid after further clauses are
    /// added (which would invalidate the in-solver model).
    #[must_use]
    pub fn model(&self) -> Vec<Option<bool>> {
        self.assigns
            .iter()
            .map(|v| match v {
                Value::True => Some(true),
                Value::False => Some(false),
                Value::Unassigned => None,
            })
            .collect()
    }

    /// Create a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Value::Unassigned);
        self.var_info.push(VarInfo {
            reason: None,
            level: 0,
        });
        self.phase.push(false);
        self.activity.push(0.0);
        self.order.push_var(&self.activity);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Ensure variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Add a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is already known to be unsatisfiable
    /// (adding an empty clause, or a unit contradicting an earlier unit).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        if !self.ok {
            return false;
        }
        // Incremental use: drop any leftover decisions from a previous solve
        // (this invalidates the current model, so read it first).
        self.cancel_until(0);
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort();
        lits.dedup();
        // Remove false literals; drop tautologies and satisfied clauses.
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // tautology: contains l and !l
            }
            i += 1;
        }
        lits.retain(|&l| self.lit_value(l) != Value::False);
        if lits.iter().any(|&l| self.lit_value(l) == Value::True) {
            return true;
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(lits, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cr = ClauseRef(self.clauses.len() as u32);
        let w0 = lits[0];
        let w1 = lits[1];
        let tier = tier_for(lbd);
        if learnt {
            self.num_learnts += 1;
            self.tier_counts[tier as usize] += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            lbd,
            tier,
            protected: false,
        });
        // A clause is watched by the negations of its first two literals:
        // when `!w0` is assigned (w0 becomes false) we visit the clause.
        self.watches[(!w0).index()].push(Watch {
            clause: cr,
            blocker: w1,
        });
        self.watches[(!w1).index()].push(Watch {
            clause: cr,
            blocker: w0,
        });
        cr
    }

    fn lit_value(&self, l: Lit) -> Value {
        match self.assigns[l.var().index()] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if l.sign() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.sign() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer.
    ///
    /// Returns `None` if the variable is unassigned (possible for variables
    /// created after solving, or before any solve).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.index()] {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Unassigned => None,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), Value::Unassigned);
        self.assigns[l.var().index()] = if l.sign() { Value::True } else { Value::False };
        self.var_info[l.var().index()] = VarInfo {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(l);
    }

    /// Propagate all enqueued assignments. Returns the conflicting clause, if
    /// any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            // Visit clauses watching !p (p just became true, so !p is false).
            let false_lit = !p;
            let mut i = 0;
            let mut watches = std::mem::take(&mut self.watches[p.index()]);
            // Note: watches for literal `q` are stored at index of `!q`... we
            // store at (!w).index() in attach, so watches[p.index()] holds
            // clauses in which `!p`... Let us re-derive: attach pushes to
            // watches[(!w0).index()] where w0 is in the clause. When p is
            // assigned true, literal !p is falsified; clauses containing !p
            // as a watched literal live in watches[(!(!p)).index()] =
            // watches[p.index()]. Correct.
            'watches: while i < watches.len() {
                let w = watches[i];
                if self.lit_value(w.blocker) == Value::True {
                    i += 1;
                    continue;
                }
                let cr = w.clause;
                // Find the falsified watched literal in the clause and try to
                // move the watch elsewhere.
                {
                    let clause = &mut self.clauses[cr.0 as usize];
                    // Normalize: put the falsified literal at position 1.
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                }
                let first = self.clauses[cr.0 as usize].lits[0];
                if first != w.blocker && self.lit_value(first) == Value::True {
                    watches[i] = Watch {
                        clause: cr,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cr.0 as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cr.0 as usize].lits[k];
                    if self.lit_value(lk) != Value::False {
                        self.clauses[cr.0 as usize].lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watch {
                            clause: cr,
                            blocker: first,
                        });
                        watches.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_value(first) == Value::False {
                    // Conflict. Restore remaining watches and bail out.
                    self.watches[p.index()] = watches;
                    self.qhead = self.trail.len();
                    return Some(cr);
                }
                self.unchecked_enqueue(first, Some(cr));
                i += 1;
            }
            self.watches[p.index()] = watches;
        }
        None
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            // Uniform rescale preserves relative order, so the heap
            // invariant is untouched.
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v.0, &self.activity);
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn clause_bump(&mut self, cr: ClauseRef) {
        let c = &mut self.clauses[cr.0 as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            // Rescale only learnt clauses: problem clauses never compete in
            // reduction, so their activity is never read — touching the
            // whole arena here was pure overhead.
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Literal-block distance of clause `ci` under the current assignment:
    /// the number of distinct non-root decision levels among its literals.
    /// O(|clause|) via a stamped level array (no clearing between calls).
    fn clause_lbd(&mut self, ci: usize) -> u32 {
        self.lbd_token += 1;
        let token = self.lbd_token;
        let mut lbd = 0u32;
        for k in 0..self.clauses[ci].lits.len() {
            let lvl = self.var_info[self.clauses[ci].lits[k].var().index()].level as usize;
            if lvl == 0 {
                continue;
            }
            if self.lbd_stamp.len() <= lvl {
                self.lbd_stamp.resize(lvl + 1, 0);
            }
            if self.lbd_stamp[lvl] != token {
                self.lbd_stamp[lvl] = token;
                lbd += 1;
            }
        }
        lbd
    }

    /// [`Solver::clause_lbd`] for a not-yet-attached literal slice.
    fn lits_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_token += 1;
        let token = self.lbd_token;
        let mut lbd = 0u32;
        for &l in lits {
            let lvl = self.var_info[l.var().index()].level as usize;
            if lvl == 0 {
                continue;
            }
            if self.lbd_stamp.len() <= lvl {
                self.lbd_stamp.resize(lvl + 1, 0);
            }
            if self.lbd_stamp[lvl] != token {
                self.lbd_stamp[lvl] = token;
                lbd += 1;
            }
        }
        lbd
    }

    /// A learnt reason clause was touched during conflict analysis: bump
    /// its activity, refresh its LBD downward, promote its tier if the new
    /// LBD warrants it, and protect it from the next reduction round.
    fn clause_touched(&mut self, cr: ClauseRef) {
        self.clause_bump(cr);
        let ci = cr.0 as usize;
        if !self.clauses[ci].learnt {
            return;
        }
        let new = self.clause_lbd(ci);
        if new < self.clauses[ci].lbd {
            let old_tier = self.clauses[ci].tier;
            let new_tier = tier_for(new);
            if new_tier != old_tier {
                self.tier_counts[old_tier as usize] -= 1;
                self.tier_counts[new_tier as usize] += 1;
                self.clauses[ci].tier = new_tier;
            }
            self.clauses[ci].lbd = new;
            self.clauses[ci].protected = true;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first), the backtrack level, and the clause's literal-block
    /// distance (computed here, while the conflicting assignment is live).
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // placeholder for UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = Some(confl);

        loop {
            let cr = confl.expect("conflict analysis requires a reason");
            self.clause_touched(cr);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cr.0 as usize].lits.len() {
                let q = self.clauses[cr.0 as usize].lits[k];
                let vi = q.var().index();
                let lvl = self.var_info[vi].level;
                if !seen[vi] && lvl > 0 {
                    seen[vi] = true;
                    self.var_bump(q.var());
                    if lvl >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to look at.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found trail literal").var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("UIP literal");
                break;
            }
            confl = self.var_info[pv.index()].reason;
        }

        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| {
                let vi = l.var().index();
                match self.var_info[vi].reason {
                    None => true,
                    Some(r) => {
                        // Keep unless every other literal of the reason is seen.
                        self.clauses[r.0 as usize].lits.iter().skip(1).any(|&q| {
                            !seen[q.var().index()] && self.var_info[q.var().index()].level > 0
                        })
                    }
                }
            })
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);

        // Backtrack level = max level among non-UIP literals.
        let bt = minimized[1..]
            .iter()
            .map(|&l| self.var_info[l.var().index()].level)
            .max()
            .unwrap_or(0);
        // Put a literal of the backtrack level in position 1 (second watch).
        if minimized.len() > 1 {
            let pos = minimized[1..]
                .iter()
                .position(|&l| self.var_info[l.var().index()].level == bt)
                .expect("literal at backtrack level")
                + 1;
            minimized.swap(1, pos);
        }
        let lbd = self.lits_lbd(&minimized);
        (minimized, bt, lbd)
    }

    /// MiniSat-style `analyzeFinal`: trace the implication graph backwards
    /// from `seeds` (the literals of a conflicting clause, or a falsified
    /// asserting unit) and collect the assumption decisions reached —
    /// reason-free trail literals above level 0, which under an assumption
    /// prefix are exactly the enqueued assumptions. `extra` lets the caller
    /// include an assumption that conflicted before it could be enqueued.
    /// Returns the failing subset in `assumptions` order, deduplicated.
    fn analyze_final(&self, seeds: &[Lit], extra: Option<Lit>, assumptions: &[Lit]) -> Vec<Lit> {
        let mut seen = vec![false; self.num_vars()];
        let mut hit: Vec<Lit> = Vec::new();
        if let Some(a) = extra {
            hit.push(a);
        }
        for &l in seeds {
            if self.var_info[l.var().index()].level > 0 {
                seen[l.var().index()] = true;
            }
        }
        for k in (0..self.trail.len()).rev() {
            let l = self.trail[k];
            let vi = l.var().index();
            if !seen[vi] {
                continue;
            }
            seen[vi] = false;
            match self.var_info[vi].reason {
                None => {
                    if self.var_info[vi].level > 0 {
                        hit.push(l);
                    }
                }
                Some(r) => {
                    // lits[0] is the implied literal; its antecedents follow.
                    for &q in &self.clauses[r.0 as usize].lits[1..] {
                        if self.var_info[q.var().index()].level > 0 {
                            seen[q.var().index()] = true;
                        }
                    }
                }
            }
        }
        assumptions
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, a)| hit.contains(&a) && !assumptions[..i].contains(&a))
            .map(|(_, a)| a)
            .collect()
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for k in (lim..self.trail.len()).rev() {
            let l = self.trail[k];
            let vi = l.var().index();
            self.phase[vi] = l.sign();
            self.assigns[vi] = Value::Unassigned;
            self.var_info[vi].reason = None;
            // Lazy heap reinsertion: unassigned variables always live in
            // the order heap (pick_branch_var discards stale entries).
            self.order.insert(l.var().0, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // O(log vars) heap pop, discarding entries assigned since they were
        // inserted (lazy deletion). Ties break on the lower variable index,
        // matching the old linear scan's first-max choice, so decision
        // sequences stay deterministic.
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v as usize] == Value::Unassigned {
                return Some(Var(v));
            }
        }
        None
    }

    /// A clause is locked while it is the reason of the assignment of its
    /// first literal (propagation always enqueues `lits[0]`, and the watch
    /// normalization cannot displace a true watched literal).
    fn locked(&self, ci: u32) -> bool {
        let c = &self.clauses[ci as usize];
        self.var_info[c.lits[0].var().index()].reason == Some(ClauseRef(ci))
    }

    /// Tier-aware in-place reduction of the learnt-clause database.
    ///
    /// Core-tier (glue) and binary clauses are kept unconditionally; Mid
    /// clauses untouched since the last round demote to Local; the worst
    /// half of the Local pool (highest LBD, then lowest activity, then
    /// youngest) is dropped — except clauses protected this round or
    /// currently locked as a propagation reason. Compaction is in place:
    /// an index remap vector, watch lists patched entry-by-entry (never
    /// rebuilt), reasons remapped. No hashing anywhere.
    fn reduce_db(&mut self) {
        self.reduces += 1;
        let n = self.clauses.len();
        // Demote Mid-tier clauses that were never touched since the last
        // reduction; touched ones keep their tier (and their protection is
        // consumed below either way).
        for c in &mut self.clauses {
            if c.learnt && c.tier == Tier::Mid && !c.protected {
                c.tier = Tier::Local;
                self.tier_counts[Tier::Mid as usize] -= 1;
                self.tier_counts[Tier::Local as usize] += 1;
            }
        }
        // The reduction pool: Local-tier learnt clauses, minus protected
        // and reason-locked ones. (Local implies LBD > 2, which implies
        // length > 2; the length guard documents the binary-clause
        // invariant rather than filtering anything in practice.)
        let mut pool: Vec<u32> = (0..n as u32)
            .filter(|&i| {
                let c = &self.clauses[i as usize];
                c.learnt
                    && c.tier == Tier::Local
                    && c.lits.len() > 2
                    && !c.protected
                    && !self.locked(i)
            })
            .collect();
        // Worst first: higher LBD, then lower activity, then younger
        // (higher index). Fully deterministic total order.
        pool.sort_unstable_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(
                    ca.activity
                        .partial_cmp(&cb.activity)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(b.cmp(&a))
        });
        let ndrop = pool.len() / 2;
        let mut dropped = vec![false; n];
        for &i in &pool[..ndrop] {
            dropped[i as usize] = true;
        }
        // Protection lasts exactly one round.
        for c in &mut self.clauses {
            c.protected = false;
        }
        #[cfg(debug_assertions)]
        for i in 0..n as u32 {
            let c = &self.clauses[i as usize];
            debug_assert!(
                !dropped[i as usize]
                    || (c.learnt && c.tier == Tier::Local && c.lits.len() > 2 && !self.locked(i)),
                "reduce_db must only drop unlocked non-binary Local learnts"
            );
        }
        // In-place compaction with an index remap vector.
        let mut remap: Vec<u32> = vec![u32::MAX; n];
        let mut write = 0usize;
        for i in 0..n {
            if dropped[i] {
                self.num_learnts -= 1;
                self.tier_counts[Tier::Local as usize] -= 1;
                continue;
            }
            remap[i] = write as u32;
            self.clauses.swap(write, i);
            write += 1;
        }
        self.clauses.truncate(write);
        // Patch watch lists in place: drop entries of dropped clauses,
        // remap the survivors. Watched literal positions are untouched by
        // compaction, so no re-derivation is needed.
        for wl in &mut self.watches {
            wl.retain_mut(|w| {
                let m = remap[w.clause.0 as usize];
                if m == u32::MAX {
                    false
                } else {
                    w.clause = ClauseRef(m);
                    true
                }
            });
        }
        // Remap reasons (locked clauses were never dropped).
        for vi in &mut self.var_info {
            if let Some(r) = vi.reason {
                let m = remap[r.0 as usize];
                debug_assert_ne!(m, u32::MAX, "a reason-locked clause was dropped");
                vi.reason = Some(ClauseRef(m));
            }
        }
        #[cfg(debug_assertions)]
        self.check_invariants()
            .expect("reduce_db left the solver inconsistent");
    }

    /// Validate the solver's structural invariants; a debugging/testing
    /// aid (runs automatically after every reduction in debug builds).
    ///
    /// Checks: every arena clause has ≥ 2 literals and is watched exactly
    /// by the negations of its first two literals (with a blocker that is
    /// a literal of the clause), watch entries reference live clauses,
    /// every assignment reason points at a clause whose first literal is
    /// the assigned (true) literal, learnt/tier counters match a recount,
    /// and every unassigned variable is present in the order heap.
    ///
    /// # Errors
    ///
    /// A description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.clauses.len();
        let mut watch_count = vec![0u32; n];
        for (idx, wl) in self.watches.iter().enumerate() {
            for w in wl {
                let ci = w.clause.0 as usize;
                if ci >= n {
                    return Err(format!("watch on list {idx} references dead clause {ci}"));
                }
                let c = &self.clauses[ci];
                let watched_here = (!c.lits[0]).index() == idx || (!c.lits[1]).index() == idx;
                if !watched_here {
                    return Err(format!(
                        "clause {ci} appears in watch list {idx} but its watched \
                         literals are {} and {}",
                        c.lits[0], c.lits[1]
                    ));
                }
                if !c.lits.contains(&w.blocker) {
                    return Err(format!("clause {ci}: blocker {} not in clause", w.blocker));
                }
                watch_count[ci] += 1;
            }
        }
        let mut learnt = 0usize;
        let mut tiers = [0usize; 3];
        for (ci, c) in self.clauses.iter().enumerate() {
            if c.lits.len() < 2 {
                return Err(format!("clause {ci} has {} literals", c.lits.len()));
            }
            if watch_count[ci] != 2 {
                return Err(format!(
                    "clause {ci} has {} watch entries, expected 2",
                    watch_count[ci]
                ));
            }
            if c.learnt {
                learnt += 1;
                tiers[c.tier as usize] += 1;
            }
        }
        if learnt != self.num_learnts {
            return Err(format!(
                "num_learnts {} but recount {learnt}",
                self.num_learnts
            ));
        }
        if tiers != self.tier_counts {
            return Err(format!(
                "tier_counts {:?} but recount {tiers:?}",
                self.tier_counts
            ));
        }
        for (v, vi) in self.var_info.iter().enumerate() {
            if let Some(r) = vi.reason {
                let ci = r.0 as usize;
                if ci >= n {
                    return Err(format!("var {v} reason references dead clause {ci}"));
                }
                let first = self.clauses[ci].lits[0];
                if first.var().index() != v {
                    return Err(format!(
                        "var {v} reason clause {ci} starts with {first}, not the var"
                    ));
                }
                if self.lit_value(first) != Value::True {
                    return Err(format!("var {v} reason literal {first} is not true"));
                }
            }
        }
        for v in 0..self.num_vars() {
            if self.assigns[v] == Value::Unassigned && !self.order.contains(v as u32) {
                return Err(format!("unassigned var {v} missing from the order heap"));
            }
        }
        Ok(())
    }

    /// Solve the formula. Returns [`SolveResult::Sat`] or
    /// [`SolveResult::Unsat`] (or [`SolveResult::Unknown`] if an interrupt
    /// flag installed via [`Solver::set_interrupt`] trips mid-search).
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solve under the given assumptions (literals forced true for this call
    /// only).
    ///
    /// Assumption handling is by restart: the assumptions are decided first
    /// at successive levels; a conflict below the assumption levels means
    /// UNSAT under assumptions (the responsible subset is then available
    /// from [`Solver::failed_assumptions`]). Honors an installed interrupt
    /// flag but applies no resource ceilings; see [`Solver::solve_limited`].
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, SolveLimits::unlimited())
    }

    /// Solve under assumptions with per-call resource ceilings.
    ///
    /// Returns [`SolveResult::Unknown`] — never a wrong verdict — as soon as
    /// a ceiling in `limits` or the installed interrupt flag trips. The
    /// solver remains usable: learnt clauses, phases, and activities are
    /// kept, so re-solving with a larger budget resumes the search rather
    /// than restarting it.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        self.failed.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        let conflict_cut = limits
            .max_conflicts
            .map(|n| self.conflicts.saturating_add(n));
        let prop_cut = limits
            .max_propagations
            .map(|n| self.propagations.saturating_add(n));
        // First solve on this formula: derive the initial learnt-clause
        // ceiling from the problem size (growing geometrically from there).
        if self.max_learnts == 0.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(LEARNT_CEILING_MIN);
        }
        // The hybrid policy's adaptive/stable phase schedule spans solve
        // calls: on a persistent solver (e.g. BMC's per-depth queries) each
        // call is far shorter than one phase, so recreating the controller
        // per call would pin the search in its opening adaptive phase
        // forever. Luby and glucose carry no cross-call schedule and
        // restart their sequence per call.
        match (&mut self.restart_ctl, self.restart_policy) {
            (Some(ctl), RestartPolicy::Hybrid { .. }) => ctl.since = 0,
            (ctl, policy) => *ctl = Some(RestartCtl::new(policy)),
        }

        loop {
            // Budget / interrupt check: two counter compares plus one relaxed
            // atomic load per iteration, on the existing cumulative counters.
            if conflict_cut.is_some_and(|c| self.conflicts >= c)
                || prop_cut.is_some_and(|c| self.propagations >= c)
                || self
                    .interrupt
                    .as_ref()
                    .is_some_and(|f| f.load(Ordering::Relaxed))
            {
                self.cancel_until(0);
                return SolveResult::Unknown;
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                self.restart_ctl
                    .as_mut()
                    .expect("set at solve entry")
                    .on_conflict();
                if self.decision_level() <= assumptions.len() as u32 {
                    // Conflict within assumptions (or at root): UNSAT.
                    if self.decision_level() == 0 {
                        self.ok = false;
                    } else {
                        let seeds = self.clauses[confl.0 as usize].lits.clone();
                        self.failed = self.analyze_final(&seeds, None, assumptions);
                    }
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt, lbd) = self.analyze(confl);
                // Glue statistics drive both reporting (`avg_lbd`) and the
                // adaptive restart signal (fast/slow EMAs).
                self.lbd_sum += lbd as u64;
                self.lbd_count += 1;
                self.ema_fast += (lbd as f64 - self.ema_fast) / 32.0;
                self.ema_slow += (lbd as f64 - self.ema_slow) / 4096.0;
                let bt = bt
                    .max(assumptions.len() as u32)
                    .min(self.decision_level() - 1);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == Value::False {
                        // Asserting unit contradicts assumptions.
                        if assumptions.is_empty() {
                            self.ok = false;
                        } else {
                            self.failed = self.analyze_final(&[learnt[0]], None, assumptions);
                        }
                        self.cancel_until(0);
                        return SolveResult::Unsat;
                    }
                    if self.lit_value(learnt[0]) == Value::Unassigned {
                        self.unchecked_enqueue(learnt[0], None);
                    }
                } else {
                    let asserting = learnt[0];
                    let cr = self.attach_clause(learnt, true, lbd);
                    if self.lit_value(asserting) == Value::Unassigned {
                        self.unchecked_enqueue(asserting, Some(cr));
                    }
                }
                self.var_decay();
                self.cla_inc /= 0.999;
            } else {
                let restart = self.restart_ctl.as_ref().expect("set at solve entry");
                if restart.should_restart(self.ema_fast, self.ema_slow) {
                    self.restarts += 1;
                    self.restart_ctl
                        .as_mut()
                        .expect("set at solve entry")
                        .on_restart();
                    self.cancel_until(assumptions.len() as u32);
                }
                // Reduce when the Local pool outgrows the ceiling; the
                // ceiling then grows geometrically so reductions stay
                // amortized as the database (and the formula) scale up.
                if self.tier_counts[Tier::Local as usize] as f64 >= self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= LEARNT_CEILING_GROWTH;
                }
                // Enqueue assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        Value::True => {
                            // Already satisfied: open an empty level to keep
                            // indices aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        Value::False => {
                            // `a` is falsified by earlier assumptions (or
                            // root units): core = {a} plus what implies !a.
                            self.failed = self.analyze_final(&[a], Some(a), assumptions);
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        Value::Unassigned => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = Lit::new(v, self.phase[v.index()]);
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        let v = Var((i.abs() - 1) as u32);
        Lit::new(v, i > 0)
    }

    fn solver_with(nvars: usize, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(nvars);
        for c in clauses {
            s.add_clause(c.iter().map(|&i| lit(i)));
        }
        s
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit() {
        let mut s = solver_with(1, &[&[1]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(0)), Some(true));
    }

    #[test]
    fn contradicting_units_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautology_ignored() {
        let mut s = solver_with(1, &[&[1, -1]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // a, a->b, b->c  (as clauses: a; !a|b; !b|c)
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(0)), Some(true));
        assert_eq!(s.value(Var(1)), Some(true));
        assert_eq!(s.value(Var(2)), Some(true));
    }

    #[test]
    fn unsat_triangle() {
        // (a|b) & (!a|b) & (a|!b) & (!a|!b) is UNSAT.
        let mut s = solver_with(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn requires_learning() {
        // XOR-ish structure forcing backtracking.
        let mut s = solver_with(
            4,
            &[
                &[1, 2],
                &[-1, 3],
                &[-2, 3],
                &[-3, 4],
                &[-4, -1, -2, 3],
                &[-3, -4, 1, 2],
            ],
        );
        assert!(s.solve().is_sat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D grid
    fn pigeonhole_3_into_2_unsat() {
        // p_{ij}: pigeon i in hole j; i in 0..3, j in 0..2.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D grid
    fn pigeonhole_5_into_5_sat() {
        let n = 5;
        let mut s = Solver::new();
        let mut p = vec![vec![Var(0); n]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_sat());
        // Model must be a valid assignment.
        for j in 0..n {
            let cnt = (0..n).filter(|&i| s.value(p[i][j]) == Some(true)).count();
            assert!(cnt <= 1, "hole {j} hosts {cnt} pigeons");
        }
    }

    #[test]
    fn assumptions_sat_then_unsat() {
        let mut s = solver_with(2, &[&[-1, 2]]); // a -> b
        assert!(s.solve_with(&[lit(1)]).is_sat());
        // Under a & !b it must be UNSAT, but the formula itself stays SAT.
        assert!(s.solve_with(&[lit(1), lit(-2)]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_conflicting_directly() {
        let mut s = solver_with(1, &[]);
        assert!(s.solve_with(&[lit(1), lit(-1)]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses_random() {
        // Deterministic pseudo-random 3-SAT near/below the phase transition;
        // check the returned model actually satisfies the formula.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..20 {
            let nvars = 20;
            let nclauses = 60 + round;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u32) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(nvars, &refs);
            if s.solve().is_sat() {
                for c in &clauses {
                    let ok = c.iter().any(|&i| {
                        let val = s.value(Var((i.abs() - 1) as u32)).unwrap_or(false);
                        (i > 0) == val
                    });
                    assert!(ok, "model does not satisfy clause {c:?}");
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        // The incremental reluctant-doubling generator must emit the Luby
        // sequence with O(1) work per step.
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let mut gen = LubyGen::new();
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(gen.next(), w, "luby({i})");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        let _ = s.solve();
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn model_snapshot_matches_value() {
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert!(s.solve().is_sat());
        let m = s.model();
        assert_eq!(m.len(), s.num_vars());
        for (i, &mv) in m.iter().enumerate() {
            assert_eq!(mv, s.value(Var(i as u32)));
        }
        assert_eq!(m[0], Some(true));
    }

    #[test]
    fn model_snapshot_survives_clause_addition() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert!(s.solve().is_sat());
        let m = s.model();
        // Adding a clause cancels to level 0 and invalidates the in-solver
        // model, but the snapshot keeps the old assignment.
        s.add_clause([lit(-1), lit(-2)]);
        assert!(m[0] == Some(true) || m[1] == Some(true));
    }

    #[test]
    fn learnt_counter_tracks_learning() {
        let mut s = solver_with(
            4,
            &[
                &[1, 2],
                &[-1, 3],
                &[-2, 3],
                &[-3, 4],
                &[-4, -1, -2, 3],
                &[-3, -4, 1, 2],
            ],
        );
        assert_eq!(s.num_learnts(), 0);
        let _ = s.solve();
        assert!(s.num_learnts() <= s.num_clauses());
    }

    #[test]
    fn restart_counter_monotone() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let before = s.restarts();
        let _ = s.solve();
        assert!(s.restarts() >= before);
    }

    /// Pigeonhole `n+1` into `n`: UNSAT, and hard enough to burn conflicts.
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let mut p = vec![vec![Var(0); n]; n + 1];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for i1 in 0..n + 1 {
            for i2 in (i1 + 1)..n + 1 {
                for (&a, &b) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause([Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        s
    }

    #[test]
    fn conflict_budget_returns_unknown_then_resumes() {
        let mut s = pigeonhole(7);
        let r = s.solve_limited(&[], SolveLimits::unlimited().conflicts(5));
        assert!(r.is_unknown(), "5 conflicts cannot refute PHP(8,7)");
        assert!(s.failed_assumptions().is_empty());
        // The budget is per call and the verdict is never wrong: re-solving
        // without a ceiling still finds UNSAT.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn propagation_budget_returns_unknown() {
        let mut s = pigeonhole(7);
        let r = s.solve_limited(&[], SolveLimits::unlimited().propagations(3));
        assert!(r.is_unknown());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn budget_never_flips_an_easy_verdict() {
        // A formula decided before the ceiling trips reports normally.
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        let r = s.solve_limited(&[], SolveLimits::unlimited().conflicts(1_000));
        assert!(r.is_sat());
        assert_eq!(s.value(Var(2)), Some(true));
    }

    #[test]
    fn interrupt_flag_cuts_solve_short() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut s = pigeonhole(7);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert!(s.solve().is_unknown());
        assert!(s.solve_with(&[Lit::pos(Var(0))]).is_unknown());
        // Clearing the flag restores normal operation on the same instance.
        flag.store(false, Ordering::Relaxed);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn failed_assumptions_direct_contradiction() {
        let mut s = solver_with(3, &[]);
        let r = s.solve_with(&[lit(3), lit(1), lit(-1)]);
        assert!(r.is_unsat());
        // x3 is irrelevant; the core is {x1, !x1} in assumption order.
        assert_eq!(s.failed_assumptions(), &[lit(1), lit(-1)]);
        assert!(s.solve().is_sat());
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn failed_assumptions_through_implications() {
        // a -> b, c -> d, b & d incompatible. Assume [e, a, c]: e irrelevant.
        let mut s = solver_with(5, &[&[-1, 2], &[-3, 4], &[-2, -4]]);
        let r = s.solve_with(&[lit(5), lit(1), lit(3)]);
        assert!(r.is_unsat());
        let core = s.failed_assumptions().to_vec();
        assert!(!core.contains(&lit(5)), "e is not responsible: {core:?}");
        assert!(core.contains(&lit(1)) || core.contains(&lit(3)));
        // The core alone must already be UNSAT.
        assert!(s.solve_with(&core).is_unsat());
        // And the formula without assumptions stays SAT.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn failed_assumptions_on_root_unsat_formula() {
        let mut s = solver_with(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(s.solve_with(&[lit(1)]).is_unsat());
        // Cores are sound but not minimal: whatever subset is reported must
        // itself be assumed literals and UNSAT on its own.
        let core = s.failed_assumptions().to_vec();
        assert!(core.iter().all(|&l| l == lit(1)));
        assert!(s.solve_with(&core).is_unsat());
        // Once the solver proves root-level UNSAT, the core is empty.
        assert!(s.solve().is_unsat());
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn failed_assumptions_subset_is_unsat_random() {
        // Random instances: whenever UNSAT-under-assumptions, the reported
        // core must itself be UNSAT (checked by re-solving with the core).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut unsat_seen = 0;
        for round in 0..40 {
            let nvars = 12;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..(30 + round) {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u32) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(nvars, &refs);
            let assumptions: Vec<Lit> = (1..=6)
                .map(|v| lit(if next() % 2 == 0 { v } else { -v }))
                .collect();
            if s.solve_with(&assumptions).is_unsat() {
                unsat_seen += 1;
                let core = s.failed_assumptions().to_vec();
                for l in &core {
                    assert!(assumptions.contains(l), "core lit {l} not assumed");
                }
                assert!(
                    s.solve_with(&core).is_unsat(),
                    "core {core:?} must be UNSAT on its own"
                );
            }
        }
        assert!(unsat_seen > 0, "test never exercised the UNSAT path");
    }

    /// Accumulate learnt clauses, then drive a few decision levels by hand
    /// so some learnt clauses become propagation reasons (solve_limited
    /// cancels to level 0 before returning, so locked state must be built
    /// manually).
    fn solver_with_locked_learnts() -> Solver {
        let mut s = pigeonhole(7);
        let r = s.solve_limited(&[], SolveLimits::unlimited().conflicts(300));
        assert!(r.is_unknown());
        assert!(s.num_learnts() > 50, "need a populated learnt DB");
        while s.decision_level() < 24 {
            let Some(v) = s.pick_branch_var() else { break };
            s.trail_lim.push(s.trail.len());
            let l = Lit::new(v, s.phase[v.index()]);
            s.unchecked_enqueue(l, None);
            if s.propagate().is_some() {
                // A conflict mid-construction is fine: stop stacking levels
                // (watches were restored by propagate before returning).
                break;
            }
        }
        s
    }

    #[test]
    fn reduce_db_preserves_locked_core_and_binary_clauses() {
        let mut s = solver_with_locked_learnts();
        let locked_lits: Vec<Vec<Lit>> = s
            .var_info
            .iter()
            .filter_map(|vi| vi.reason)
            .map(|r| s.clauses[r.0 as usize].lits.clone())
            .collect();
        let (core_before, _, _) = s.tier_sizes();
        let binary_before = s
            .clauses
            .iter()
            .filter(|c| c.learnt && c.lits.len() == 2)
            .count();
        let learnts_before = s.num_learnts();
        s.reduce_db();
        s.check_invariants().expect("invariants after reduce_db");
        assert!(
            s.num_learnts() < learnts_before,
            "the reduction must actually drop clauses ({learnts_before} before)"
        );
        // Every reason still points at a clause with the same literals.
        for (lits, vi) in locked_lits.iter().zip(
            s.var_info
                .iter()
                .filter(|vi| vi.reason.is_some())
                .collect::<Vec<_>>(),
        ) {
            let r = vi.reason.expect("still locked");
            assert_eq!(
                &s.clauses[r.0 as usize].lits, lits,
                "reason clause must survive reduction unchanged"
            );
        }
        let (core_after, _, _) = s.tier_sizes();
        assert_eq!(core_after, core_before, "Core tier is kept forever");
        let binary_after = s
            .clauses
            .iter()
            .filter(|c| c.learnt && c.lits.len() == 2)
            .count();
        assert_eq!(binary_after, binary_before, "binary learnts never dropped");
    }

    #[test]
    fn reduce_db_repeated_rounds_stay_consistent() {
        let mut s = solver_with_locked_learnts();
        for _ in 0..3 {
            s.reduce_db();
            s.check_invariants().expect("watch lists stay consistent");
        }
        // The solver must still function after stacked in-place compactions.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tiny_learnt_ceiling_forces_reductions_and_keeps_verdicts() {
        let mut s = pigeonhole(7);
        s.set_learnt_ceiling(8);
        assert!(s.solve().is_unsat());
        assert!(s.reduces() > 0, "an 8-clause ceiling must trip reductions");
        s.check_invariants().expect("invariants after solving");

        let mut s = solver_with(
            4,
            &[&[1, 2], &[-1, 3], &[-2, 3], &[-3, 4], &[-4, -1, -2, 3]],
        );
        s.set_learnt_ceiling(1);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn glue_statistics_populate() {
        let mut s = pigeonhole(6);
        assert!(s.solve().is_unsat());
        assert!(s.avg_lbd() > 0.0);
        assert_eq!(s.avg_lbd_milli(), (s.avg_lbd() * 1000.0).floor() as u64);
        assert!(s.lbd_ema_fast() > 0.0);
        assert!(s.lbd_ema_slow() > 0.0);
        let (core, mid, local) = s.tier_sizes();
        assert_eq!(
            core + mid + local,
            s.num_learnts(),
            "every learnt clause sits in exactly one tier"
        );
    }

    #[test]
    fn restart_policies_agree_on_verdicts() {
        for policy in [
            RestartPolicy::luby(),
            RestartPolicy::glucose(),
            RestartPolicy::hybrid(),
        ] {
            let mut s = pigeonhole(6);
            s.set_restart_policy(policy);
            assert!(s.solve().is_unsat(), "{policy:?} must refute PHP(7,6)");
            let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
            s.set_restart_policy(policy);
            assert!(s.solve().is_sat(), "{policy:?} must satisfy the chain");
        }
    }

    #[test]
    fn identical_runs_produce_identical_stats() {
        let run = || {
            let mut s = pigeonhole(7);
            s.set_restart_policy(RestartPolicy::hybrid());
            s.set_learnt_ceiling(64);
            let verdict = s.solve();
            (
                verdict,
                s.conflicts(),
                s.decisions(),
                s.propagations(),
                s.restarts(),
                s.reduces(),
                s.num_learnts(),
                s.tier_sizes(),
                s.avg_lbd_milli(),
            )
        };
        assert_eq!(run(), run(), "solver runs must be bit-reproducible");
    }

    #[test]
    fn heap_decisions_match_first_max_tie_break() {
        // All activities start equal, so the first decision must pick the
        // lowest-indexed unassigned variable — the old linear scan's choice.
        let mut s = solver_with(3, &[&[1, 2, 3]]);
        assert!(s.solve().is_sat());
        assert_eq!(
            s.value(Var(0)),
            Some(false),
            "saved-phase default is negative, so x1 decided false first"
        );
    }

    #[test]
    fn incremental_reuse_after_reduction() {
        // Clauses added after a reduced solve must still propagate; the
        // order heap must pick up late-created variables.
        let mut s = pigeonhole(7);
        s.set_learnt_ceiling(16);
        assert!(s.solve().is_unsat());
        let mut s2 = Solver::new();
        s2.reserve_vars(2);
        s2.add_clause([lit(1), lit(2)]);
        assert!(s2.solve().is_sat());
        let v = s2.new_var();
        s2.add_clause([Lit::pos(v)]);
        assert!(s2.solve().is_sat());
        assert_eq!(s2.value(v), Some(true));
    }
}
