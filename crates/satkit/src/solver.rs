//! The CDCL solver core.

use crate::{Lit, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a solve verdict should be inspected, not dropped"]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The solve was cut short by a resource limit ([`SolveLimits`]) or an
    /// external interrupt flag ([`Solver::set_interrupt`]) before reaching a
    /// verdict. The formula's status is undetermined; the solver state stays
    /// valid and a later (larger-budget) solve may continue where learning
    /// left off.
    Unknown,
}

impl SolveResult {
    /// `true` if the result is [`SolveResult::Sat`].
    #[must_use]
    pub fn is_sat(self) -> bool {
        matches!(self, SolveResult::Sat)
    }

    /// `true` if the result is [`SolveResult::Unsat`].
    #[must_use]
    pub fn is_unsat(self) -> bool {
        matches!(self, SolveResult::Unsat)
    }

    /// `true` if the result is [`SolveResult::Unknown`].
    #[must_use]
    pub fn is_unknown(self) -> bool {
        matches!(self, SolveResult::Unknown)
    }
}

/// Resource ceilings for a single [`Solver::solve_limited`] call.
///
/// Ceilings are *per call*: they bound how much additional work this solve
/// may do on top of the cumulative [`Solver::conflicts`] /
/// [`Solver::propagations`] counters. `None` means unlimited. A tripped
/// ceiling yields [`SolveResult::Unknown`], never a wrong verdict, and is
/// deterministic for a given formula and assumption sequence (unlike
/// wall-clock deadlines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveLimits {
    /// Maximum conflicts this call may spend.
    pub max_conflicts: Option<u64>,
    /// Maximum unit propagations this call may spend.
    pub max_propagations: Option<u64>,
}

impl SolveLimits {
    /// No limits: `solve_limited` behaves exactly like `solve_with`.
    #[must_use]
    pub fn unlimited() -> SolveLimits {
        SolveLimits::default()
    }

    /// Limit the conflicts this call may spend.
    #[must_use]
    pub fn conflicts(mut self, n: u64) -> SolveLimits {
        self.max_conflicts = Some(n);
        self
    }

    /// Limit the unit propagations this call may spend.
    #[must_use]
    pub fn propagations(mut self, n: u64) -> SolveLimits {
        self.max_propagations = Some(n);
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    True,
    False,
    Unassigned,
}

/// Reference to a clause in the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClauseRef(u32);

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Activity for clause-DB reduction.
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: ClauseRef,
    /// The other watched literal; lets us skip clause inspection when it is
    /// already true (blocking literal optimization).
    blocker: Lit,
}

/// Per-variable trail bookkeeping.
#[derive(Debug, Clone, Copy)]
struct VarInfo {
    reason: Option<ClauseRef>,
    level: u32,
}

/// A conflict-driven clause-learning SAT solver.
///
/// See the crate docs for an example. Clauses may be added at any time before
/// [`Solver::solve`]; solving is restartable (assumptions are supported via
/// [`Solver::solve_with`]).
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// watches[lit.index()] = clauses watching `lit` (i.e. containing `!lit`
    /// watched... we watch the literal itself: watches are indexed by the
    /// *falsified* literal).
    watches: Vec<Vec<Watch>>,
    assigns: Vec<Value>,
    var_info: Vec<VarInfo>,
    /// Saved phases for phase-saving.
    phase: Vec<bool>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// Set when an empty clause (or conflicting units) was added.
    ok: bool,
    /// Statistics: number of conflicts encountered so far.
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
    /// Number of learnt clauses currently in the database (maintained
    /// incrementally so [`Solver::num_learnts`] is O(1)).
    num_learnts: usize,
    /// External interrupt flag, polled once per search-loop iteration.
    interrupt: Option<Arc<AtomicBool>>,
    /// Failing assumption subset of the most recent UNSAT `solve_with` /
    /// `solve_limited` call (empty after Sat/Unknown or a root-level UNSAT).
    failed: Vec<Lit>,
}

impl Solver {
    /// Create an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Number of variables created so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learnt) currently in the database.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Number of learnt clauses currently in the database (shrinks when
    /// clause-DB reduction discards inactive learnts).
    #[must_use]
    pub fn num_learnts(&self) -> usize {
        self.num_learnts
    }

    /// Number of conflicts encountered across all `solve` calls.
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Number of decisions made across all `solve` calls.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Number of unit propagations performed across all `solve` calls.
    #[must_use]
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Number of restarts performed across all `solve` calls.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Install (or clear) an external interrupt flag.
    ///
    /// While set, every solve variant polls the flag once per search-loop
    /// iteration and returns [`SolveResult::Unknown`] as soon as it reads
    /// `true`. The flag is shared (callers keep a clone and set it from
    /// another thread); it persists across solve calls and is *not* reset by
    /// the solver, so a cancelled token keeps cutting subsequent solves
    /// short until the caller clears it.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// The failing assumption subset of the most recent solve call, in the
    /// order the assumptions were passed.
    ///
    /// After an [`SolveResult::Unsat`] answer from [`Solver::solve_with`] /
    /// [`Solver::solve_limited`], this is a subset `C` of the assumptions
    /// such that the formula is already unsatisfiable under `C` alone
    /// (computed MiniSat-`analyzeFinal` style from the final conflict). An
    /// *empty* core after UNSAT-under-assumptions means the formula is
    /// unsatisfiable regardless of any assumptions. After Sat/Unknown the
    /// slice is empty.
    #[must_use]
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Snapshot of the full assignment after a [`SolveResult::Sat`] answer.
    ///
    /// Index `i` holds the value of `Var(i)`; `None` marks variables left
    /// unassigned (created after solving, or before any solve). Taking one
    /// snapshot is cheaper than calling [`Solver::value`] per variable in a
    /// decode loop, and the snapshot stays valid after further clauses are
    /// added (which would invalidate the in-solver model).
    #[must_use]
    pub fn model(&self) -> Vec<Option<bool>> {
        self.assigns
            .iter()
            .map(|v| match v {
                Value::True => Some(true),
                Value::False => Some(false),
                Value::Unassigned => None,
            })
            .collect()
    }

    /// Create a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Value::Unassigned);
        self.var_info.push(VarInfo {
            reason: None,
            level: 0,
        });
        self.phase.push(false);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Ensure variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.num_vars() < n {
            self.new_var();
        }
    }

    /// Add a clause (a disjunction of literals).
    ///
    /// Returns `false` if the solver is already known to be unsatisfiable
    /// (adding an empty clause, or a unit contradicting an earlier unit).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        if !self.ok {
            return false;
        }
        // Incremental use: drop any leftover decisions from a previous solve
        // (this invalidates the current model, so read it first).
        self.cancel_until(0);
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort();
        lits.dedup();
        // Remove false literals; drop tautologies and satisfied clauses.
        let mut i = 0;
        while i + 1 < lits.len() {
            if lits[i].var() == lits[i + 1].var() {
                return true; // tautology: contains l and !l
            }
            i += 1;
        }
        lits.retain(|&l| self.lit_value(l) != Value::False);
        if lits.iter().any(|&l| self.lit_value(l) == Value::True) {
            return true;
        }
        match lits.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(lits[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach_clause(lits, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cr = ClauseRef(self.clauses.len() as u32);
        let w0 = lits[0];
        let w1 = lits[1];
        self.num_learnts += usize::from(learnt);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        // A clause is watched by the negations of its first two literals:
        // when `!w0` is assigned (w0 becomes false) we visit the clause.
        self.watches[(!w0).index()].push(Watch {
            clause: cr,
            blocker: w1,
        });
        self.watches[(!w1).index()].push(Watch {
            clause: cr,
            blocker: w0,
        });
        cr
    }

    fn lit_value(&self, l: Lit) -> Value {
        match self.assigns[l.var().index()] {
            Value::Unassigned => Value::Unassigned,
            Value::True => {
                if l.sign() {
                    Value::True
                } else {
                    Value::False
                }
            }
            Value::False => {
                if l.sign() {
                    Value::False
                } else {
                    Value::True
                }
            }
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer.
    ///
    /// Returns `None` if the variable is unassigned (possible for variables
    /// created after solving, or before any solve).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.index()] {
            Value::True => Some(true),
            Value::False => Some(false),
            Value::Unassigned => None,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), Value::Unassigned);
        self.assigns[l.var().index()] = if l.sign() { Value::True } else { Value::False };
        self.var_info[l.var().index()] = VarInfo {
            reason,
            level: self.decision_level(),
        };
        self.trail.push(l);
    }

    /// Propagate all enqueued assignments. Returns the conflicting clause, if
    /// any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            // Visit clauses watching !p (p just became true, so !p is false).
            let false_lit = !p;
            let mut i = 0;
            let mut watches = std::mem::take(&mut self.watches[p.index()]);
            // Note: watches for literal `q` are stored at index of `!q`... we
            // store at (!w).index() in attach, so watches[p.index()] holds
            // clauses in which `!p`... Let us re-derive: attach pushes to
            // watches[(!w0).index()] where w0 is in the clause. When p is
            // assigned true, literal !p is falsified; clauses containing !p
            // as a watched literal live in watches[(!(!p)).index()] =
            // watches[p.index()]. Correct.
            'watches: while i < watches.len() {
                let w = watches[i];
                if self.lit_value(w.blocker) == Value::True {
                    i += 1;
                    continue;
                }
                let cr = w.clause;
                // Find the falsified watched literal in the clause and try to
                // move the watch elsewhere.
                {
                    let clause = &mut self.clauses[cr.0 as usize];
                    // Normalize: put the falsified literal at position 1.
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                }
                let first = self.clauses[cr.0 as usize].lits[0];
                if first != w.blocker && self.lit_value(first) == Value::True {
                    watches[i] = Watch {
                        clause: cr,
                        blocker: first,
                    };
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cr.0 as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cr.0 as usize].lits[k];
                    if self.lit_value(lk) != Value::False {
                        self.clauses[cr.0 as usize].lits.swap(1, k);
                        self.watches[(!lk).index()].push(Watch {
                            clause: cr,
                            blocker: first,
                        });
                        watches.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_value(first) == Value::False {
                    // Conflict. Restore remaining watches and bail out.
                    self.watches[p.index()] = watches;
                    self.qhead = self.trail.len();
                    return Some(cr);
                }
                self.unchecked_enqueue(first, Some(cr));
                i += 1;
            }
            self.watches[p.index()] = watches;
        }
        None
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn clause_bump(&mut self, cr: ClauseRef) {
        let c = &mut self.clauses[cr.0 as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::from_index(0)]; // placeholder for UIP
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = Some(confl);

        loop {
            let cr = confl.expect("conflict analysis requires a reason");
            self.clause_bump(cr);
            let start = usize::from(p.is_some());
            for k in start..self.clauses[cr.0 as usize].lits.len() {
                let q = self.clauses[cr.0 as usize].lits[k];
                let vi = q.var().index();
                let lvl = self.var_info[vi].level;
                if !seen[vi] && lvl > 0 {
                    seen[vi] = true;
                    self.var_bump(q.var());
                    if lvl >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to look at.
            loop {
                index -= 1;
                let l = self.trail[index];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found trail literal").var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !p.expect("UIP literal");
                break;
            }
            confl = self.var_info[pv.index()].reason;
        }

        // Clause minimization: drop literals implied by the rest.
        let keep: Vec<Lit> = learnt[1..]
            .iter()
            .copied()
            .filter(|&l| {
                let vi = l.var().index();
                match self.var_info[vi].reason {
                    None => true,
                    Some(r) => {
                        // Keep unless every other literal of the reason is seen.
                        self.clauses[r.0 as usize].lits.iter().skip(1).any(|&q| {
                            !seen[q.var().index()] && self.var_info[q.var().index()].level > 0
                        })
                    }
                }
            })
            .collect();
        let mut minimized = vec![learnt[0]];
        minimized.extend(keep);

        // Backtrack level = max level among non-UIP literals.
        let bt = minimized[1..]
            .iter()
            .map(|&l| self.var_info[l.var().index()].level)
            .max()
            .unwrap_or(0);
        // Put a literal of the backtrack level in position 1 (second watch).
        if minimized.len() > 1 {
            let pos = minimized[1..]
                .iter()
                .position(|&l| self.var_info[l.var().index()].level == bt)
                .expect("literal at backtrack level")
                + 1;
            minimized.swap(1, pos);
        }
        (minimized, bt)
    }

    /// MiniSat-style `analyzeFinal`: trace the implication graph backwards
    /// from `seeds` (the literals of a conflicting clause, or a falsified
    /// asserting unit) and collect the assumption decisions reached —
    /// reason-free trail literals above level 0, which under an assumption
    /// prefix are exactly the enqueued assumptions. `extra` lets the caller
    /// include an assumption that conflicted before it could be enqueued.
    /// Returns the failing subset in `assumptions` order, deduplicated.
    fn analyze_final(&self, seeds: &[Lit], extra: Option<Lit>, assumptions: &[Lit]) -> Vec<Lit> {
        let mut seen = vec![false; self.num_vars()];
        let mut hit: Vec<Lit> = Vec::new();
        if let Some(a) = extra {
            hit.push(a);
        }
        for &l in seeds {
            if self.var_info[l.var().index()].level > 0 {
                seen[l.var().index()] = true;
            }
        }
        for k in (0..self.trail.len()).rev() {
            let l = self.trail[k];
            let vi = l.var().index();
            if !seen[vi] {
                continue;
            }
            seen[vi] = false;
            match self.var_info[vi].reason {
                None => {
                    if self.var_info[vi].level > 0 {
                        hit.push(l);
                    }
                }
                Some(r) => {
                    // lits[0] is the implied literal; its antecedents follow.
                    for &q in &self.clauses[r.0 as usize].lits[1..] {
                        if self.var_info[q.var().index()].level > 0 {
                            seen[q.var().index()] = true;
                        }
                    }
                }
            }
        }
        assumptions
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, a)| hit.contains(&a) && !assumptions[..i].contains(&a))
            .map(|(_, a)| a)
            .collect()
    }

    fn cancel_until(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for k in (lim..self.trail.len()).rev() {
            let l = self.trail[k];
            let vi = l.var().index();
            self.phase[vi] = l.sign();
            self.assigns[vi] = Value::Unassigned;
            self.var_info[vi].reason = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        // Linear scan weighted by activity; simple but adequate for our sizes.
        let mut best: Option<(f64, Var)> = None;
        for v in 0..self.num_vars() {
            if self.assigns[v] == Value::Unassigned {
                let a = self.activity[v];
                match best {
                    Some((ba, _)) if ba >= a => {}
                    _ => best = Some((a, Var(v as u32))),
                }
            }
        }
        best.map(|(_, v)| v)
    }

    /// Reduce the learnt-clause database, keeping the more active half.
    fn reduce_db(&mut self) {
        // Collect learnt clause indices sorted by activity.
        let mut learnt: Vec<usize> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt && self.clauses[i].lits.len() > 2)
            .collect();
        if learnt.len() < 100 {
            return;
        }
        learnt.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let drop_set: std::collections::HashSet<usize> =
            learnt[..learnt.len() / 2].iter().copied().collect();
        // A clause is locked if it is the reason of an assignment.
        let locked: std::collections::HashSet<usize> = self
            .var_info
            .iter()
            .filter_map(|vi| vi.reason.map(|r| r.0 as usize))
            .collect();
        // Rebuild the clause arena, remapping references.
        let mut remap: Vec<Option<u32>> = vec![None; self.clauses.len()];
        let mut new_clauses = Vec::with_capacity(self.clauses.len());
        for (i, c) in self.clauses.iter().enumerate() {
            if drop_set.contains(&i) && !locked.contains(&i) {
                continue;
            }
            remap[i] = Some(new_clauses.len() as u32);
            new_clauses.push(c.clone());
        }
        self.clauses = new_clauses;
        self.num_learnts = self.clauses.iter().filter(|c| c.learnt).count();
        for vi in &mut self.var_info {
            if let Some(r) = vi.reason {
                vi.reason = remap[r.0 as usize].map(ClauseRef);
            }
        }
        // Rebuild watches.
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            let cr = ClauseRef(i as u32);
            let w0 = c.lits[0];
            let w1 = c.lits[1];
            self.watches[(!w0).index()].push(Watch {
                clause: cr,
                blocker: w1,
            });
            self.watches[(!w1).index()].push(Watch {
                clause: cr,
                blocker: w0,
            });
        }
    }

    /// Solve the formula. Returns [`SolveResult::Sat`] or
    /// [`SolveResult::Unsat`] (or [`SolveResult::Unknown`] if an interrupt
    /// flag installed via [`Solver::set_interrupt`] trips mid-search).
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with(&[])
    }

    /// Solve under the given assumptions (literals forced true for this call
    /// only).
    ///
    /// Assumption handling is by restart: the assumptions are decided first
    /// at successive levels; a conflict below the assumption levels means
    /// UNSAT under assumptions (the responsible subset is then available
    /// from [`Solver::failed_assumptions`]). Honors an installed interrupt
    /// flag but applies no resource ceilings; see [`Solver::solve_limited`].
    pub fn solve_with(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, SolveLimits::unlimited())
    }

    /// Solve under assumptions with per-call resource ceilings.
    ///
    /// Returns [`SolveResult::Unknown`] — never a wrong verdict — as soon as
    /// a ceiling in `limits` or the installed interrupt flag trips. The
    /// solver remains usable: learnt clauses, phases, and activities are
    /// kept, so re-solving with a larger budget resumes the search rather
    /// than restarting it.
    pub fn solve_limited(&mut self, assumptions: &[Lit], limits: SolveLimits) -> SolveResult {
        self.failed.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        self.cancel_until(0);
        let conflict_cut = limits
            .max_conflicts
            .map(|n| self.conflicts.saturating_add(n));
        let prop_cut = limits
            .max_propagations
            .map(|n| self.propagations.saturating_add(n));
        let mut restart_count = 0u32;
        let mut conflicts_until_restart = luby(restart_count) * 64;
        let mut conflicts_this_restart = 0u64;

        loop {
            // Budget / interrupt check: two counter compares plus one relaxed
            // atomic load per iteration, on the existing cumulative counters.
            if conflict_cut.is_some_and(|c| self.conflicts >= c)
                || prop_cut.is_some_and(|c| self.propagations >= c)
                || self
                    .interrupt
                    .as_ref()
                    .is_some_and(|f| f.load(Ordering::Relaxed))
            {
                self.cancel_until(0);
                return SolveResult::Unknown;
            }
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_this_restart += 1;
                if self.decision_level() <= assumptions.len() as u32 {
                    // Conflict within assumptions (or at root): UNSAT.
                    if self.decision_level() == 0 {
                        self.ok = false;
                    } else {
                        let seeds = self.clauses[confl.0 as usize].lits.clone();
                        self.failed = self.analyze_final(&seeds, None, assumptions);
                    }
                    self.cancel_until(0);
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                let bt = bt
                    .max(assumptions.len() as u32)
                    .min(self.decision_level() - 1);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    if self.lit_value(learnt[0]) == Value::False {
                        // Asserting unit contradicts assumptions.
                        if assumptions.is_empty() {
                            self.ok = false;
                        } else {
                            self.failed = self.analyze_final(&[learnt[0]], None, assumptions);
                        }
                        self.cancel_until(0);
                        return SolveResult::Unsat;
                    }
                    if self.lit_value(learnt[0]) == Value::Unassigned {
                        self.unchecked_enqueue(learnt[0], None);
                    }
                } else {
                    let asserting = learnt[0];
                    let cr = self.attach_clause(learnt, true);
                    if self.lit_value(asserting) == Value::Unassigned {
                        self.unchecked_enqueue(asserting, Some(cr));
                    }
                }
                self.var_decay();
                self.cla_inc /= 0.999;
            } else {
                if conflicts_this_restart >= conflicts_until_restart {
                    restart_count += 1;
                    self.restarts += 1;
                    conflicts_until_restart = luby(restart_count) * 64;
                    conflicts_this_restart = 0;
                    self.cancel_until(assumptions.len() as u32);
                }
                if self.conflicts % 4096 == 4095 {
                    self.reduce_db();
                }
                // Enqueue assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        Value::True => {
                            // Already satisfied: open an empty level to keep
                            // indices aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        Value::False => {
                            // `a` is falsified by earlier assumptions (or
                            // root units): core = {a} plus what implies !a.
                            self.failed = self.analyze_final(&[a], Some(a), assumptions);
                            self.cancel_until(0);
                            return SolveResult::Unsat;
                        }
                        Value::Unassigned => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, None);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let l = Lit::new(v, self.phase[v.index()]);
                        self.unchecked_enqueue(l, None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
fn luby(i: u32) -> u64 {
    let mut k = 1u32;
    while (1u64 << k) < (i as u64 + 2) {
        k += 1;
    }
    let mut i = i as u64;
    let mut kk = k;
    loop {
        if i + 2 == (1 << kk) {
            return 1 << (kk - 1);
        }
        if i + 1 < (1 << (kk - 1)) {
            kk -= 1;
            continue;
        }
        i -= (1 << (kk - 1)) - 1;
        kk = 1;
        while (1u64 << kk) < (i + 2) {
            kk += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(i: i32) -> Lit {
        let v = Var((i.abs() - 1) as u32);
        Lit::new(v, i > 0)
    }

    fn solver_with(nvars: usize, clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(nvars);
        for c in clauses {
            s.add_clause(c.iter().map(|&i| lit(i)));
        }
        s
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve().is_sat());
    }

    #[test]
    fn single_unit() {
        let mut s = solver_with(1, &[&[1]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(0)), Some(true));
    }

    #[test]
    fn contradicting_units_unsat() {
        let mut s = solver_with(1, &[&[1], &[-1]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautology_ignored() {
        let mut s = solver_with(1, &[&[1, -1]]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn simple_implication_chain() {
        // a, a->b, b->c  (as clauses: a; !a|b; !b|c)
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(0)), Some(true));
        assert_eq!(s.value(Var(1)), Some(true));
        assert_eq!(s.value(Var(2)), Some(true));
    }

    #[test]
    fn unsat_triangle() {
        // (a|b) & (!a|b) & (a|!b) & (!a|!b) is UNSAT.
        let mut s = solver_with(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn requires_learning() {
        // XOR-ish structure forcing backtracking.
        let mut s = solver_with(
            4,
            &[
                &[1, 2],
                &[-1, 3],
                &[-2, 3],
                &[-3, 4],
                &[-4, -1, -2, 3],
                &[-3, -4, 1, 2],
            ],
        );
        assert!(s.solve().is_sat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D grid
    fn pigeonhole_3_into_2_unsat() {
        // p_{ij}: pigeon i in hole j; i in 0..3, j in 0..2.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i,j index a 2-D grid
    fn pigeonhole_5_into_5_sat() {
        let n = 5;
        let mut s = Solver::new();
        let mut p = vec![vec![Var(0); n]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
                }
            }
        }
        assert!(s.solve().is_sat());
        // Model must be a valid assignment.
        for j in 0..n {
            let cnt = (0..n).filter(|&i| s.value(p[i][j]) == Some(true)).count();
            assert!(cnt <= 1, "hole {j} hosts {cnt} pigeons");
        }
    }

    #[test]
    fn assumptions_sat_then_unsat() {
        let mut s = solver_with(2, &[&[-1, 2]]); // a -> b
        assert!(s.solve_with(&[lit(1)]).is_sat());
        // Under a & !b it must be UNSAT, but the formula itself stays SAT.
        assert!(s.solve_with(&[lit(1), lit(-2)]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn assumptions_conflicting_directly() {
        let mut s = solver_with(1, &[]);
        assert!(s.solve_with(&[lit(1), lit(-1)]).is_unsat());
        assert!(s.solve().is_sat());
    }

    #[test]
    fn model_satisfies_all_clauses_random() {
        // Deterministic pseudo-random 3-SAT near/below the phase transition;
        // check the returned model actually satisfies the formula.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for round in 0..20 {
            let nvars = 20;
            let nclauses = 60 + round;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u32) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(nvars, &refs);
            if s.solve().is_sat() {
                for c in &clauses {
                    let ok = c.iter().any(|&i| {
                        let val = s.value(Var((i.abs() - 1) as u32)).unwrap_or(false);
                        (i > 0) == val
                    });
                    assert!(ok, "model does not satisfy clause {c:?}");
                }
            }
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &w) in want.iter().enumerate() {
            assert_eq!(super::luby(i as u32), w, "luby({i})");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = solver_with(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        let _ = s.solve();
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn model_snapshot_matches_value() {
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        assert!(s.solve().is_sat());
        let m = s.model();
        assert_eq!(m.len(), s.num_vars());
        for (i, &mv) in m.iter().enumerate() {
            assert_eq!(mv, s.value(Var(i as u32)));
        }
        assert_eq!(m[0], Some(true));
    }

    #[test]
    fn model_snapshot_survives_clause_addition() {
        let mut s = solver_with(2, &[&[1, 2]]);
        assert!(s.solve().is_sat());
        let m = s.model();
        // Adding a clause cancels to level 0 and invalidates the in-solver
        // model, but the snapshot keeps the old assignment.
        s.add_clause([lit(-1), lit(-2)]);
        assert!(m[0] == Some(true) || m[1] == Some(true));
    }

    #[test]
    fn learnt_counter_tracks_learning() {
        let mut s = solver_with(
            4,
            &[
                &[1, 2],
                &[-1, 3],
                &[-2, 3],
                &[-3, 4],
                &[-4, -1, -2, 3],
                &[-3, -4, 1, 2],
            ],
        );
        assert_eq!(s.num_learnts(), 0);
        let _ = s.solve();
        assert!(s.num_learnts() <= s.num_clauses());
    }

    #[test]
    fn restart_counter_monotone() {
        let mut s = solver_with(2, &[&[1, 2]]);
        let before = s.restarts();
        let _ = s.solve();
        assert!(s.restarts() >= before);
    }

    /// Pigeonhole `n+1` into `n`: UNSAT, and hard enough to burn conflicts.
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let mut p = vec![vec![Var(0); n]; n + 1];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(row.iter().map(|&v| Lit::pos(v)));
        }
        for i1 in 0..n + 1 {
            for i2 in (i1 + 1)..n + 1 {
                for (&a, &b) in p[i1].iter().zip(&p[i2]) {
                    s.add_clause([Lit::neg(a), Lit::neg(b)]);
                }
            }
        }
        s
    }

    #[test]
    fn conflict_budget_returns_unknown_then_resumes() {
        let mut s = pigeonhole(7);
        let r = s.solve_limited(&[], SolveLimits::unlimited().conflicts(5));
        assert!(r.is_unknown(), "5 conflicts cannot refute PHP(8,7)");
        assert!(s.failed_assumptions().is_empty());
        // The budget is per call and the verdict is never wrong: re-solving
        // without a ceiling still finds UNSAT.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn propagation_budget_returns_unknown() {
        let mut s = pigeonhole(7);
        let r = s.solve_limited(&[], SolveLimits::unlimited().propagations(3));
        assert!(r.is_unknown());
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn budget_never_flips_an_easy_verdict() {
        // A formula decided before the ceiling trips reports normally.
        let mut s = solver_with(3, &[&[1], &[-1, 2], &[-2, 3]]);
        let r = s.solve_limited(&[], SolveLimits::unlimited().conflicts(1_000));
        assert!(r.is_sat());
        assert_eq!(s.value(Var(2)), Some(true));
    }

    #[test]
    fn interrupt_flag_cuts_solve_short() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut s = pigeonhole(7);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert!(s.solve().is_unknown());
        assert!(s.solve_with(&[Lit::pos(Var(0))]).is_unknown());
        // Clearing the flag restores normal operation on the same instance.
        flag.store(false, Ordering::Relaxed);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn failed_assumptions_direct_contradiction() {
        let mut s = solver_with(3, &[]);
        let r = s.solve_with(&[lit(3), lit(1), lit(-1)]);
        assert!(r.is_unsat());
        // x3 is irrelevant; the core is {x1, !x1} in assumption order.
        assert_eq!(s.failed_assumptions(), &[lit(1), lit(-1)]);
        assert!(s.solve().is_sat());
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn failed_assumptions_through_implications() {
        // a -> b, c -> d, b & d incompatible. Assume [e, a, c]: e irrelevant.
        let mut s = solver_with(5, &[&[-1, 2], &[-3, 4], &[-2, -4]]);
        let r = s.solve_with(&[lit(5), lit(1), lit(3)]);
        assert!(r.is_unsat());
        let core = s.failed_assumptions().to_vec();
        assert!(!core.contains(&lit(5)), "e is not responsible: {core:?}");
        assert!(core.contains(&lit(1)) || core.contains(&lit(3)));
        // The core alone must already be UNSAT.
        assert!(s.solve_with(&core).is_unsat());
        // And the formula without assumptions stays SAT.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn failed_assumptions_on_root_unsat_formula() {
        let mut s = solver_with(2, &[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]);
        assert!(s.solve_with(&[lit(1)]).is_unsat());
        // Cores are sound but not minimal: whatever subset is reported must
        // itself be assumed literals and UNSAT on its own.
        let core = s.failed_assumptions().to_vec();
        assert!(core.iter().all(|&l| l == lit(1)));
        assert!(s.solve_with(&core).is_unsat());
        // Once the solver proves root-level UNSAT, the core is empty.
        assert!(s.solve().is_unsat());
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn failed_assumptions_subset_is_unsat_random() {
        // Random instances: whenever UNSAT-under-assumptions, the reported
        // core must itself be UNSAT (checked by re-solving with the core).
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut unsat_seen = 0;
        for round in 0..40 {
            let nvars = 12;
            let mut clauses: Vec<Vec<i32>> = Vec::new();
            for _ in 0..(30 + round) {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nvars as u32) as i32 + 1;
                    let sign = if next() % 2 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
            let mut s = solver_with(nvars, &refs);
            let assumptions: Vec<Lit> = (1..=6)
                .map(|v| lit(if next() % 2 == 0 { v } else { -v }))
                .collect();
            if s.solve_with(&assumptions).is_unsat() {
                unsat_seen += 1;
                let core = s.failed_assumptions().to_vec();
                for l in &core {
                    assert!(assumptions.contains(l), "core lit {l} not assumed");
                }
                assert!(
                    s.solve_with(&core).is_unsat(),
                    "core {core:?} must be UNSAT on its own"
                );
            }
        }
        assert!(unsat_seen > 0, "test never exercised the UNSAT path");
    }
}
