//! A convenience layer for building CNF formulas: fresh variables, common
//! constraint shapes (implication, equivalence, at-most-one, exactly-one),
//! and Tseitin encodings of AND/OR gates.

use crate::{Lit, Solver, Var};

/// Incremental CNF builder that feeds a [`Solver`].
///
/// The builder owns the solver; retrieve it with [`CnfBuilder::into_solver`]
/// or solve in place via [`CnfBuilder::solver_mut`]. Search-control knobs
/// (e.g. [`Solver::set_restart_policy`], [`Solver::set_interrupt`]) are
/// configured through the same accessor — the builder adds encoding
/// convenience only and never touches solver tuning.
///
/// # Example
///
/// ```
/// use satkit::CnfBuilder;
///
/// let mut b = CnfBuilder::new();
/// let xs: Vec<_> = (0..4).map(|_| b.fresh()).collect();
/// b.exactly_one(xs.iter().map(|&v| satkit::Lit::pos(v)));
/// assert!(b.solver_mut().solve().is_sat());
/// ```
#[derive(Debug, Default)]
pub struct CnfBuilder {
    solver: Solver,
}

impl CnfBuilder {
    /// Create an empty builder.
    pub fn new() -> CnfBuilder {
        CnfBuilder {
            solver: Solver::new(),
        }
    }

    /// Create a fresh variable.
    pub fn fresh(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Access the underlying solver.
    pub fn solver_mut(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Consume the builder, returning the solver.
    pub fn into_solver(self) -> Solver {
        self.solver
    }

    /// Add a raw clause.
    pub fn clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.solver.add_clause(lits);
    }

    /// Assert a single literal.
    pub fn assert_lit(&mut self, l: Lit) {
        self.solver.add_clause([l]);
    }

    /// Add `a -> b`.
    pub fn implies(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause([!a, b]);
    }

    /// Add `a <-> b`.
    pub fn iff(&mut self, a: Lit, b: Lit) {
        self.implies(a, b);
        self.implies(b, a);
    }

    /// Add `if cond then all of `then`` (cond -> l for each l).
    pub fn implies_all<I: IntoIterator<Item = Lit>>(&mut self, cond: Lit, then: I) {
        for l in then {
            self.implies(cond, l);
        }
    }

    /// At least one of the literals holds.
    pub fn at_least_one<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.solver.add_clause(lits);
    }

    /// Pairwise at-most-one encoding (fine for the small sets we use).
    pub fn at_most_one<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let ls: Vec<Lit> = lits.into_iter().collect();
        for i in 0..ls.len() {
            for j in (i + 1)..ls.len() {
                self.solver.add_clause([!ls[i], !ls[j]]);
            }
        }
    }

    /// Exactly one of the literals holds.
    pub fn exactly_one<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let ls: Vec<Lit> = lits.into_iter().collect();
        self.at_least_one(ls.iter().copied());
        self.at_most_one(ls);
    }

    /// Tseitin AND: returns a literal equivalent to the conjunction.
    pub fn and<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let ls: Vec<Lit> = lits.into_iter().collect();
        if ls.len() == 1 {
            return ls[0];
        }
        let g = Lit::pos(self.fresh());
        for &l in &ls {
            self.implies(g, l);
        }
        let mut cl: Vec<Lit> = ls.iter().map(|&l| !l).collect();
        cl.push(g);
        self.clause(cl);
        g
    }

    /// Build a *unary counter* over `lits` (duplicates allowed): returns
    /// `out` with `out[j]` ⟺ at least `j+1` of the literals are true,
    /// truncated to `cap` outputs. Uses the totalizer encoding with both
    /// implication directions, so the outputs are exact.
    pub fn unary_count(&mut self, lits: &[Lit], cap: usize) -> Vec<Lit> {
        match lits.len() {
            0 => Vec::new(),
            1 => vec![lits[0]].into_iter().take(cap).collect(),
            n => {
                let (a, b) = lits.split_at(n / 2);
                let ua = self.unary_count(a, cap);
                let ub = self.unary_count(b, cap);
                self.merge_unary(&ua, &ub, cap)
            }
        }
    }

    fn merge_unary(&mut self, a: &[Lit], b: &[Lit], cap: usize) -> Vec<Lit> {
        let lo = (a.len() + b.len()).min(cap);
        let out: Vec<Lit> = (0..lo).map(|_| Lit::pos(self.fresh())).collect();
        // Direction 1: i of a and j of b true → at least i+j true.
        for i in 0..=a.len() {
            for j in 0..=b.len() {
                let k = i + j;
                if k == 0 || k > lo {
                    continue;
                }
                let mut clause = Vec::new();
                if i > 0 {
                    clause.push(!a[i - 1]);
                }
                if j > 0 {
                    clause.push(!b[j - 1]);
                }
                clause.push(out[k - 1]);
                self.clause(clause);
            }
        }
        // Direction 2: fewer than i+1 in a and fewer than j+1 in b → fewer
        // than i+j+1 total.
        for i in 0..=a.len() {
            for j in 0..=b.len() {
                let k = i + j;
                if k >= lo {
                    continue;
                }
                let mut clause = Vec::new();
                if i < a.len() {
                    clause.push(a[i]);
                }
                if j < b.len() {
                    clause.push(b[j]);
                }
                clause.push(!out[k]);
                self.clause(clause);
            }
        }
        out
    }

    /// Exactly `k` of the literals are true (duplicates allowed and counted
    /// with multiplicity).
    pub fn exactly_k<I: IntoIterator<Item = Lit>>(&mut self, lits: I, k: usize) {
        let ls: Vec<Lit> = lits.into_iter().collect();
        if k > ls.len() {
            // Unsatisfiable.
            self.clause([]);
            return;
        }
        let u = self.unary_count(&ls, k + 1);
        if k >= 1 {
            self.assert_lit(u[k - 1]);
        }
        if k < ls.len() {
            self.assert_lit(!u[k]);
        }
    }

    /// At most `k` of the literals are true (counting multiplicity).
    pub fn at_most_k<I: IntoIterator<Item = Lit>>(&mut self, lits: I, k: usize) {
        let ls: Vec<Lit> = lits.into_iter().collect();
        if k >= ls.len() {
            return;
        }
        let u = self.unary_count(&ls, k + 1);
        self.assert_lit(!u[k]);
    }

    /// Tseitin OR: returns a literal equivalent to the disjunction.
    pub fn or<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        let ls: Vec<Lit> = lits.into_iter().collect();
        if ls.len() == 1 {
            return ls[0];
        }
        let g = Lit::pos(self.fresh());
        for &l in &ls {
            self.implies(l, g);
        }
        let mut cl: Vec<Lit> = ls.clone();
        cl.push(!g);
        self.clause(cl);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_model() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Var> = (0..5).map(|_| b.fresh()).collect();
        b.exactly_one(xs.iter().map(|&v| Lit::pos(v)));
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        let count = xs.iter().filter(|&&v| s.value(v) == Some(true)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn at_most_one_allows_zero() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Var> = (0..3).map(|_| b.fresh()).collect();
        b.at_most_one(xs.iter().map(|&v| Lit::pos(v)));
        for &v in &xs {
            b.assert_lit(Lit::neg(v));
        }
        assert!(b.solver_mut().solve().is_sat());
    }

    #[test]
    fn at_most_one_rejects_two() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        b.at_most_one([Lit::pos(x), Lit::pos(y)]);
        b.assert_lit(Lit::pos(x));
        b.assert_lit(Lit::pos(y));
        assert!(b.solver_mut().solve().is_unsat());
    }

    #[test]
    fn tseitin_and_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let g = b.and([Lit::pos(x), Lit::pos(y)]);
        b.assert_lit(g);
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(x), Some(true));
        assert_eq!(s.value(y), Some(true));
    }

    #[test]
    fn tseitin_and_negated() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let g = b.and([Lit::pos(x), Lit::pos(y)]);
        b.assert_lit(!g);
        b.assert_lit(Lit::pos(x));
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(y), Some(false));
    }

    #[test]
    fn tseitin_or_semantics() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        let g = b.or([Lit::pos(x), Lit::pos(y)]);
        b.assert_lit(!g);
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(x), Some(false));
        assert_eq!(s.value(y), Some(false));
    }

    #[test]
    fn exactly_k_counts() {
        for n in 1..=5usize {
            for k in 0..=n {
                let mut b = CnfBuilder::new();
                let xs: Vec<Var> = (0..n).map(|_| b.fresh()).collect();
                b.exactly_k(xs.iter().map(|&v| Lit::pos(v)), k);
                let s = b.solver_mut();
                assert!(s.solve().is_sat(), "n={n} k={k}");
                let cnt = xs.iter().filter(|&&v| s.value(v) == Some(true)).count();
                assert_eq!(cnt, k, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn exactly_k_with_duplicates() {
        // x repeated twice + y: exactly 2 ⇒ (x ∧ ¬y) — count 2 — or... x twice
        // counts double, so x=true,y=false (2) or x=false,y can't reach 2.
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        b.exactly_k([Lit::pos(x), Lit::pos(x), Lit::pos(y)], 2);
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(x), Some(true));
        assert_eq!(s.value(y), Some(false));
    }

    #[test]
    fn exactly_k_overconstrained_unsat() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        b.exactly_k([Lit::pos(x)], 2);
        assert!(b.solver_mut().solve().is_unsat());
    }

    #[test]
    fn exactly_k_forced_conflict() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Var> = (0..4).map(|_| b.fresh()).collect();
        b.exactly_k(xs.iter().map(|&v| Lit::pos(v)), 2);
        // Force three of them true: contradiction.
        for &v in &xs[..3] {
            b.assert_lit(Lit::pos(v));
        }
        assert!(b.solver_mut().solve().is_unsat());
    }

    #[test]
    fn at_most_k_boundary() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Var> = (0..4).map(|_| b.fresh()).collect();
        b.at_most_k(xs.iter().map(|&v| Lit::pos(v)), 2);
        for &v in &xs[..2] {
            b.assert_lit(Lit::pos(v));
        }
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        let cnt = xs.iter().filter(|&&v| s.value(v) == Some(true)).count();
        assert!(cnt <= 2);
    }

    #[test]
    fn unary_count_outputs_are_exact() {
        let mut b = CnfBuilder::new();
        let xs: Vec<Var> = (0..3).map(|_| b.fresh()).collect();
        let u = b.unary_count(&xs.iter().map(|&v| Lit::pos(v)).collect::<Vec<_>>(), 3);
        // Force exactly two true.
        b.assert_lit(Lit::pos(xs[0]));
        b.assert_lit(Lit::pos(xs[1]));
        b.assert_lit(Lit::neg(xs[2]));
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(u[0].var()).map(|v| v == u[0].sign()), Some(true));
        assert_eq!(s.value(u[1].var()).map(|v| v == u[1].sign()), Some(true));
        assert_eq!(s.value(u[2].var()).map(|v| v == u[2].sign()), Some(false));
    }

    #[test]
    fn iff_propagates_both_ways() {
        let mut b = CnfBuilder::new();
        let x = b.fresh();
        let y = b.fresh();
        b.iff(Lit::pos(x), Lit::pos(y));
        b.assert_lit(Lit::neg(y));
        let s = b.solver_mut();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(x), Some(false));
    }
}
