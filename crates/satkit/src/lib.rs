//! `satkit` — a from-scratch CDCL SAT solver.
//!
//! This crate is the decision-procedure substrate for the D-Finder-style
//! deadlock-freedom check in `bip-verify` (the paper's tool chain discharges
//! the formula `CI ∧ II ∧ DIS` to an external solver; we build the solver
//! ourselves, per the reproduction ground rules).
//!
//! The solver implements the standard modern architecture:
//! conflict-driven clause learning (first-UIP), two-watched-literal
//! propagation, a heap-backed VSIDS decision heuristic with phase saving,
//! an LBD ("glue")-tiered learnt-clause database with in-place reduction,
//! and configurable restarts ([`RestartPolicy`]: Luby, glucose-style
//! adaptive EMAs, or a hybrid alternating the two).
//!
//! # Example
//!
//! ```
//! use satkit::{Solver, Lit};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause([Lit::pos(a), Lit::pos(b)]);
//! s.add_clause([Lit::neg(a)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

mod cnf;
mod dimacs;
mod solver;

pub use cnf::CnfBuilder;
pub use dimacs::{parse_dimacs, to_dimacs, DimacsError};
pub use solver::{RestartPolicy, SolveLimits, SolveResult, Solver};

/// A propositional variable, identified by a dense index.
///
/// Variables are created with [`Solver::new_var`] or [`CnfBuilder::fresh`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Index of this variable (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Build a literal from a variable and a sign (`true` = positive).
    pub fn new(v: Var, sign: bool) -> Lit {
        if sign {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is a positive literal.
    pub fn sign(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense index for watch/assignment tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> Lit {
        Lit(i as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::fmt::Display for Lit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.sign() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "!x{}", self.var().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_roundtrip() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::pos(v).sign());
        assert!(!Lit::neg(v).sign());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!(!Lit::pos(v)), Lit::pos(v));
    }

    #[test]
    fn literal_display() {
        assert_eq!(Lit::pos(Var(3)).to_string(), "x3");
        assert_eq!(Lit::neg(Var(3)).to_string(), "!x3");
        assert_eq!(Var(3).to_string(), "x3");
    }

    #[test]
    fn literal_ordering_groups_by_var() {
        assert!(Lit::pos(Var(0)) < Lit::neg(Var(0)));
        assert!(Lit::neg(Var(0)) < Lit::pos(Var(1)));
    }
}
