//! DIMACS CNF import/export, for debugging and interoperability with other
//! solvers.

use crate::{Lit, Solver, Var};

/// Error produced when parsing a DIMACS file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// Line number (1-based) where the error occurred.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dimacs parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for DimacsError {}

/// Parse DIMACS CNF text into a fresh [`Solver`].
///
/// # Errors
///
/// Returns [`DimacsError`] on malformed input (bad header, non-integer
/// tokens, literal out of the declared range).
pub fn parse_dimacs(text: &str) -> Result<Solver, DimacsError> {
    let mut solver = Solver::new();
    let mut declared_vars: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    line: lineno,
                    message: format!("bad problem line: {line:?}"),
                });
            }
            let nvars: usize = parts[1].parse().map_err(|_| DimacsError {
                line: lineno,
                message: format!("bad variable count: {:?}", parts[1]),
            })?;
            declared_vars = Some(nvars);
            solver.reserve_vars(nvars);
            continue;
        }
        for tok in line.split_whitespace() {
            let i: i64 = tok.parse().map_err(|_| DimacsError {
                line: lineno,
                message: format!("bad literal token: {tok:?}"),
            })?;
            if i == 0 {
                solver.add_clause(current.drain(..));
            } else {
                let vi = (i.unsigned_abs() - 1) as usize;
                if let Some(n) = declared_vars {
                    if vi >= n {
                        return Err(DimacsError {
                            line: lineno,
                            message: format!("literal {i} out of declared range"),
                        });
                    }
                }
                solver.reserve_vars(vi + 1);
                current.push(Lit::new(Var(vi as u32), i > 0));
            }
        }
    }
    if !current.is_empty() {
        solver.add_clause(current.drain(..));
    }
    Ok(solver)
}

/// Serialize a clause list to DIMACS CNF text.
pub fn to_dimacs(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", num_vars, clauses.len()));
    for c in clauses {
        for &l in c {
            let i = l.var().0 as i64 + 1;
            out.push_str(&format!("{} ", if l.sign() { i } else { -i }));
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_sat() {
        let mut s = parse_dimacs("c comment\np cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(1)), Some(true));
    }

    #[test]
    fn parse_unsat() {
        let mut s = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn parse_trailing_clause_without_zero() {
        let mut s = parse_dimacs("p cnf 1 1\n1").unwrap();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(0)), Some(true));
    }

    #[test]
    fn parse_rejects_bad_header() {
        let err = parse_dimacs("p dnf 1 1\n1 0\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn parse_rejects_out_of_range() {
        assert!(parse_dimacs("p cnf 1 1\n2 0\n").is_err());
    }

    #[test]
    fn parse_rejects_garbage_token() {
        assert!(parse_dimacs("p cnf 1 1\nxyz 0\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let clauses = vec![
            vec![Lit::pos(Var(0)), Lit::neg(Var(1))],
            vec![Lit::pos(Var(1))],
        ];
        let text = to_dimacs(2, &clauses);
        let mut s = parse_dimacs(&text).unwrap();
        assert!(s.solve().is_sat());
        assert_eq!(s.value(Var(0)), Some(true));
        assert_eq!(s.value(Var(1)), Some(true));
    }

    #[test]
    fn error_display() {
        let err = DimacsError {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(err.to_string(), "dimacs parse error at line 3: boom");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const NVARS: usize = 10;

    /// Random CNF over `NVARS` variables: 0–23 clauses of 0–4 literals each
    /// (empty clauses and tautologies included on purpose — the round trip
    /// must survive them too).
    fn random_cnf(seed: u64) -> Vec<Vec<Lit>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let nclauses = rng.gen_range(0..24usize);
        (0..nclauses)
            .map(|_| {
                let len = rng.gen_range(0..5usize);
                (0..len)
                    .map(|_| {
                        let v = Var(rng.gen_range(0..NVARS as u32));
                        Lit::new(v, rng.gen_range(0..2u32) == 0)
                    })
                    .collect()
            })
            .collect()
    }

    proptest! {
        /// `to_dimacs` → `parse_dimacs` is the identity up to the solver's
        /// own clause simplification: the parsed solver has exactly the
        /// declared variables, agrees on satisfiability with a solver built
        /// directly from the clause list, and any model it produces
        /// satisfies every original clause.
        #[test]
        fn roundtrip_preserves_semantics(seed in 0u64..512) {
            let clauses = random_cnf(seed);
            let text = to_dimacs(NVARS, &clauses);
            let mut parsed = match parse_dimacs(&text) {
                Ok(s) => s,
                Err(e) => return Err(format!("serializer output must parse: {e}")),
            };
            prop_assert_eq!(parsed.num_vars(), NVARS);

            let mut direct = Solver::new();
            direct.reserve_vars(NVARS);
            for c in &clauses {
                let _ = direct.add_clause(c.iter().copied());
            }

            let verdict = parsed.solve();
            prop_assert_eq!(verdict, direct.solve());
            if verdict.is_sat() {
                let model = parsed.model();
                for c in &clauses {
                    prop_assert!(
                        c.iter().any(|l| model[l.var().index()] == Some(l.sign())),
                        "parsed model does not satisfy clause {:?}", c
                    );
                }
            }
        }

        /// The serialized header always matches the clause list handed in.
        #[test]
        fn roundtrip_header_dimensions(seed in 0u64..512) {
            let clauses = random_cnf(seed);
            let text = to_dimacs(NVARS, &clauses);
            let header = text.lines().next().unwrap_or_default().to_string();
            prop_assert_eq!(header, format!("p cnf {} {}", NVARS, clauses.len()));
        }
    }
}
