//! Differential testing of the glue-aware solver configuration.
//!
//! The tiered/EMA machinery (LBD tiers, glucose-style adaptive restarts,
//! in-place DB reduction) must never change a *verdict* — only how fast the
//! solver reaches it. These tests pit the new default configuration
//! (hybrid restarts, aggressive reduction ceiling) against the legacy-style
//! configuration (plain Luby restarts, a ceiling high enough that the
//! clause database is never reduced) on random CNFs around the 3-SAT phase
//! transition, and re-verify every SAT model by direct clause evaluation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use satkit::{Lit, RestartPolicy, Solver, Var};

const NVARS: usize = 30;

/// Random 1–4-literal CNF over `NVARS` variables with a clause count drawn
/// around the 3-SAT phase transition (so the pool mixes SAT and UNSAT
/// instances, and the UNSAT ones need real search).
fn random_cnf(seed: u64) -> Vec<Vec<Lit>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let nclauses = rng.gen_range(NVARS * 3..NVARS * 5);
    (0..nclauses)
        .map(|_| {
            let len = rng.gen_range(1..5usize);
            (0..len)
                .map(|_| {
                    let v = Var(rng.gen_range(0..NVARS as u32));
                    Lit::new(v, rng.gen_range(0..2u32) == 0)
                })
                .collect()
        })
        .collect()
}

fn solver_for(clauses: &[Vec<Lit>]) -> Solver {
    let mut s = Solver::new();
    s.reserve_vars(NVARS);
    for c in clauses {
        let _ = s.add_clause(c.iter().copied());
    }
    s
}

/// The new default: hybrid adaptive/stable restarts with a ceiling low
/// enough that random instances actually trip tier-aware reductions.
fn tiered(clauses: &[Vec<Lit>]) -> Solver {
    let mut s = solver_for(clauses);
    s.set_restart_policy(RestartPolicy::hybrid());
    s.set_learnt_ceiling(32);
    s
}

/// Legacy-style: Luby restarts, database never reduced.
fn legacy(clauses: &[Vec<Lit>]) -> Solver {
    let mut s = solver_for(clauses);
    s.set_restart_policy(RestartPolicy::luby());
    s.set_learnt_ceiling(usize::MAX);
    s
}

fn check_model(s: &Solver, clauses: &[Vec<Lit>]) -> Result<(), String> {
    let model = s.model();
    for c in clauses {
        prop_assert!(
            c.iter().any(|l| model[l.var().index()] == Some(l.sign())),
            "model does not satisfy clause {c:?}"
        );
    }
    Ok(())
}

/// The full observable counter state of a solver, for determinism checks.
type SolverStats = (u64, u64, u64, u64, u64, usize, (usize, usize, usize), u64);

fn stats(s: &Solver) -> SolverStats {
    (
        s.conflicts(),
        s.decisions(),
        s.propagations(),
        s.restarts(),
        s.reduces(),
        s.num_learnts(),
        s.tier_sizes(),
        s.avg_lbd_milli(),
    )
}

proptest! {
    /// Tiered/EMA and legacy configurations agree on every verdict, and
    /// each SAT model satisfies the original clause list.
    #[test]
    fn configurations_agree_on_verdicts(seed in 0u64..256) {
        let clauses = random_cnf(seed);
        let mut new_cfg = tiered(&clauses);
        let mut old_cfg = legacy(&clauses);
        let v_new = new_cfg.solve();
        let v_old = old_cfg.solve();
        prop_assert!(v_new == v_old, "configurations disagree on seed {}", seed);
        if v_new.is_sat() {
            check_model(&new_cfg, &clauses)?;
            check_model(&old_cfg, &clauses)?;
        }
    }

    /// Two identical runs produce identical verdicts *and* identical
    /// statistics — the solver is deterministic down to its counters, for
    /// every restart policy.
    #[test]
    fn identical_runs_are_bit_identical(seed in 0u64..64) {
        let clauses = random_cnf(seed);
        for policy in [
            RestartPolicy::luby(),
            RestartPolicy::glucose(),
            RestartPolicy::hybrid(),
        ] {
            let run = || {
                let mut s = solver_for(&clauses);
                s.set_restart_policy(policy);
                s.set_learnt_ceiling(32);
                let v = s.solve();
                (v, stats(&s))
            };
            let (v1, st1) = run();
            let (v2, st2) = run();
            prop_assert!(v1 == v2, "verdicts differ under {:?}", policy);
            prop_assert!(st1 == st2, "stats differ under {:?}", policy);
        }
    }

    /// Incremental use under assumptions stays differential-clean: both
    /// configurations agree per assumption set on the same formula, even
    /// after earlier solves have reduced the tiered database.
    #[test]
    fn assumption_solves_agree(seed in 0u64..64) {
        let clauses = random_cnf(seed);
        let mut new_cfg = tiered(&clauses);
        let mut old_cfg = legacy(&clauses);
        for i in 0..4u32 {
            let v = Var(i % NVARS as u32);
            let assume = [Lit::new(v, i % 2 == 0)];
            let v_new = new_cfg.solve_with(&assume);
            let v_old = old_cfg.solve_with(&assume);
            prop_assert!(v_new == v_old, "assumption round {} disagrees", i);
            if v_new.is_sat() {
                check_model(&new_cfg, &clauses)?;
            }
        }
    }
}
