//! Umbrella crate for the *Rigorous System Design* reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the individual crates for the real APIs.
//! Cross-crate layers worth knowing about: `core::fault` derives
//! crash/recover/lossy variants that `verify`'s engines check unchanged, and
//! `netsim` injects the same fault classes into concrete executions.
pub use bip_arch as arch;
pub use bip_core as core;
pub use bip_distributed as distributed;
pub use bip_embed as embed;
pub use bip_engine as engine;
pub use bip_rt as rt;
pub use bip_verify as verify;
pub use netsim;
pub use satkit;
