//! Shared generators for the workspace integration tests.
#![allow(dead_code)] // each test binary uses a subset

use bip_core::{AtomBuilder, ConnectorBuilder, Expr, SystemBuilder};

/// How a generated variable behaves across transitions.
#[derive(Debug, Clone, Copy)]
enum VarStyle {
    /// The original location-heavy flavor: small random ±1 drifts under
    /// occasional small comparison guards.
    Drift,
    /// A guard-bounded counter: increments guarded by `v < limit` (with
    /// occasional resets to 0), so the interval-width analysis and the
    /// simple-path bit encoding both get a real workout. Limits are mostly
    /// small (state spaces stay explorable) but sometimes land above the
    /// widening cadence (≈ 64) to exercise threshold widening.
    Counter { limit: i64 },
}

/// A random flat system: a handful of randomly generated atoms (guarded,
/// variable-updating transitions over random small location graphs) wired by
/// random rendezvous/broadcast/singleton connectors. Used to stress the
/// compiled enabled-set protocol and the packed-state explorers on shapes no
/// hand-written model covers. Variables are a mix of drifting values and
/// guard-bounded counters (see [`VarStyle`]).
pub fn random_system(seed: u64) -> bip_core::System {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n_atoms = rng.gen_range(2usize..6);
    let mut sb = SystemBuilder::new();
    let mut port_counts = Vec::new();
    for a in 0..n_atoms {
        let n_ports = rng.gen_range(1usize..4);
        let n_locs = rng.gen_range(1usize..4);
        let n_vars = rng.gen_range(0usize..3);
        let styles: Vec<VarStyle> = (0..n_vars)
            .map(|_| {
                if rng.gen_bool(0.4) {
                    let limit = if rng.gen_bool(0.2) {
                        rng.gen_range(80i64..110)
                    } else {
                        rng.gen_range(2i64..8)
                    };
                    VarStyle::Counter { limit }
                } else {
                    VarStyle::Drift
                }
            })
            .collect();
        let mut b = AtomBuilder::new(format!("t{a}"));
        for (v, style) in styles.iter().enumerate() {
            let init = match style {
                VarStyle::Drift => rng.gen_range(-2i64..3),
                VarStyle::Counter { .. } => 0,
            };
            b = b.var(format!("v{v}"), init);
        }
        for p in 0..n_ports {
            b = b.port(format!("p{p}"));
        }
        for l in 0..n_locs {
            b = b.location(format!("l{l}"));
        }
        b = b.initial("l0");
        // Random transitions; always at least one per location so systems
        // aren't trivially stuck.
        for l in 0..n_locs {
            for _ in 0..rng.gen_range(1usize..3) {
                let port = format!("p{}", rng.gen_range(0..n_ports));
                let to = format!("l{}", rng.gen_range(0..n_locs));
                // Updates first: an incrementing counter *forces* its own
                // bound as the transition guard — the guard-bounded shape
                // the interval-width analysis can prove finite.
                let mut forced_guard = None;
                let updates = if n_vars > 0 && rng.gen_bool(0.5) {
                    let v = rng.gen_range(0..n_vars);
                    let e = match styles[v] {
                        // Counters mostly advance toward their guard bound;
                        // sometimes they reset, closing a modular loop.
                        VarStyle::Counter { limit } => {
                            if rng.gen_bool(0.8) {
                                forced_guard = Some(Expr::var(v as u32).lt(Expr::int(limit)));
                                Expr::var(v as u32).add(Expr::int(1))
                            } else {
                                Expr::int(0)
                            }
                        }
                        VarStyle::Drift => {
                            Expr::var(v as u32).add(Expr::int(rng.gen_range(-1i64..2)))
                        }
                    };
                    vec![(format!("v{v}"), e)]
                } else {
                    vec![]
                };
                let guard = if let Some(g) = forced_guard {
                    g
                } else if n_vars > 0 && rng.gen_bool(0.4) {
                    let v = rng.gen_range(0..n_vars);
                    match styles[v] {
                        VarStyle::Counter { limit } => Expr::var(v as u32).lt(Expr::int(limit)),
                        VarStyle::Drift => {
                            Expr::var(v as u32).lt(Expr::int(rng.gen_range(1i64..5)))
                        }
                    }
                } else {
                    Expr::t()
                };
                b = b.guarded_transition(
                    format!("l{l}"),
                    port,
                    guard,
                    updates
                        .iter()
                        .map(|(v, e)| (v.as_str(), e.clone()))
                        .collect(),
                    to,
                );
            }
        }
        let ty = b.build().unwrap();
        port_counts.push(n_ports);
        sb.add_instance(format!("a{a}"), &ty);
    }
    let n_conns = rng.gen_range(1usize..6);
    for c in 0..n_conns {
        let kind = rng.gen_range(0..3);
        let pick_port =
            |rng: &mut StdRng, comp: usize| format!("p{}", rng.gen_range(0..port_counts[comp]));
        match kind {
            0 => {
                let comp = rng.gen_range(0..n_atoms);
                let port = pick_port(&mut rng, comp);
                sb.add_connector(ConnectorBuilder::singleton(format!("c{c}"), comp, port));
            }
            1 => {
                // Rendezvous over a random subset of ≥ 2 distinct atoms.
                let mut comps: Vec<usize> = (0..n_atoms).collect();
                for i in (1..comps.len()).rev() {
                    comps.swap(i, rng.gen_range(0..i + 1));
                }
                comps.truncate(rng.gen_range(2..n_atoms.max(2) + 1));
                let ports: Vec<(usize, String)> = comps
                    .iter()
                    .map(|&co| (co, pick_port(&mut rng, co)))
                    .collect();
                sb.add_connector(ConnectorBuilder::rendezvous(format!("c{c}"), ports));
            }
            _ => {
                let trigger = rng.gen_range(0..n_atoms);
                let mut receivers: Vec<(usize, String)> = Vec::new();
                for co in 0..n_atoms {
                    if co != trigger && rng.gen_bool(0.6) {
                        let p = pick_port(&mut rng, co);
                        receivers.push((co, p));
                    }
                }
                let tp = pick_port(&mut rng, trigger);
                if receivers.is_empty() {
                    sb.add_connector(ConnectorBuilder::singleton(format!("c{c}"), trigger, tp));
                } else {
                    sb.add_connector(ConnectorBuilder::broadcast(
                        format!("c{c}"),
                        (trigger, tp),
                        receivers,
                    ));
                }
            }
        }
    }
    let mut sys = sb.build().unwrap();
    // Random priority layer half the time.
    if rng.gen_bool(0.5) {
        let nc = sys.num_connectors() as u32;
        sys.priority_mut().maximal_progress = rng.gen_bool(0.5);
        for _ in 0..rng.gen_range(0..3) {
            sys.priority_mut().add_rule(
                bip_core::ConnId(rng.gen_range(0..nc)),
                bip_core::ConnId(rng.gen_range(0..nc)),
            );
        }
    }
    sys
}
