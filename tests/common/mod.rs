//! Shared generators for the workspace integration tests.
#![allow(dead_code)] // each test binary uses a subset

use bip_core::{AtomBuilder, ConnectorBuilder, Expr, SystemBuilder};

/// A random flat system: a handful of randomly generated atoms (guarded,
/// variable-updating transitions over random small location graphs) wired by
/// random rendezvous/broadcast/singleton connectors. Used to stress the
/// compiled enabled-set protocol and the packed-state explorers on shapes no
/// hand-written model covers.
pub fn random_system(seed: u64) -> bip_core::System {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n_atoms = rng.gen_range(2usize..6);
    let mut sb = SystemBuilder::new();
    let mut port_counts = Vec::new();
    for a in 0..n_atoms {
        let n_ports = rng.gen_range(1usize..4);
        let n_locs = rng.gen_range(1usize..4);
        let n_vars = rng.gen_range(0usize..3);
        let mut b = AtomBuilder::new(format!("t{a}"));
        for v in 0..n_vars {
            b = b.var(format!("v{v}"), rng.gen_range(-2i64..3));
        }
        for p in 0..n_ports {
            b = b.port(format!("p{p}"));
        }
        for l in 0..n_locs {
            b = b.location(format!("l{l}"));
        }
        b = b.initial("l0");
        // Random transitions; always at least one per location so systems
        // aren't trivially stuck.
        for l in 0..n_locs {
            for _ in 0..rng.gen_range(1usize..3) {
                let port = format!("p{}", rng.gen_range(0..n_ports));
                let to = format!("l{}", rng.gen_range(0..n_locs));
                let guard = if n_vars > 0 && rng.gen_bool(0.4) {
                    Expr::var(rng.gen_range(0..n_vars) as u32).lt(Expr::int(rng.gen_range(1i64..5)))
                } else {
                    Expr::t()
                };
                let updates = if n_vars > 0 && rng.gen_bool(0.5) {
                    let v = rng.gen_range(0..n_vars);
                    vec![(
                        format!("v{v}"),
                        Expr::var(v as u32).add(Expr::int(rng.gen_range(-1i64..2))),
                    )]
                } else {
                    vec![]
                };
                b = b.guarded_transition(
                    format!("l{l}"),
                    port,
                    guard,
                    updates
                        .iter()
                        .map(|(v, e)| (v.as_str(), e.clone()))
                        .collect(),
                    to,
                );
            }
        }
        let ty = b.build().unwrap();
        port_counts.push(n_ports);
        sb.add_instance(format!("a{a}"), &ty);
    }
    let n_conns = rng.gen_range(1usize..6);
    for c in 0..n_conns {
        let kind = rng.gen_range(0..3);
        let pick_port =
            |rng: &mut StdRng, comp: usize| format!("p{}", rng.gen_range(0..port_counts[comp]));
        match kind {
            0 => {
                let comp = rng.gen_range(0..n_atoms);
                let port = pick_port(&mut rng, comp);
                sb.add_connector(ConnectorBuilder::singleton(format!("c{c}"), comp, port));
            }
            1 => {
                // Rendezvous over a random subset of ≥ 2 distinct atoms.
                let mut comps: Vec<usize> = (0..n_atoms).collect();
                for i in (1..comps.len()).rev() {
                    comps.swap(i, rng.gen_range(0..i + 1));
                }
                comps.truncate(rng.gen_range(2..n_atoms.max(2) + 1));
                let ports: Vec<(usize, String)> = comps
                    .iter()
                    .map(|&co| (co, pick_port(&mut rng, co)))
                    .collect();
                sb.add_connector(ConnectorBuilder::rendezvous(format!("c{c}"), ports));
            }
            _ => {
                let trigger = rng.gen_range(0..n_atoms);
                let mut receivers: Vec<(usize, String)> = Vec::new();
                for co in 0..n_atoms {
                    if co != trigger && rng.gen_bool(0.6) {
                        let p = pick_port(&mut rng, co);
                        receivers.push((co, p));
                    }
                }
                let tp = pick_port(&mut rng, trigger);
                if receivers.is_empty() {
                    sb.add_connector(ConnectorBuilder::singleton(format!("c{c}"), trigger, tp));
                } else {
                    sb.add_connector(ConnectorBuilder::broadcast(
                        format!("c{c}"),
                        (trigger, tp),
                        receivers,
                    ));
                }
            }
        }
    }
    let mut sys = sb.build().unwrap();
    // Random priority layer half the time.
    if rng.gen_bool(0.5) {
        let nc = sys.num_connectors() as u32;
        sys.priority_mut().maximal_progress = rng.gen_bool(0.5);
        for _ in 0..rng.gen_range(0..3) {
            sys.priority_mut().add_rule(
                bip_core::ConnId(rng.gen_range(0..nc)),
                bip_core::ConnId(rng.gen_range(0..nc)),
            );
        }
    }
    sys
}
