//! Cross-validation of the SAT-based bounded model checker against the
//! explicit-state engine.
//!
//! The two engines share nothing but the `System` they check: `bip-verify`'s
//! [`BmcConfig`] bit-blasts the transition relation through `bip_core::sym`
//! and unrolls it in a CDCL solver, while [`check_invariant_with`] runs a
//! concrete breadth-first search over packed states. Agreement on random
//! systems is therefore a strong end-to-end check of the whole symbolic
//! pipeline (widths, expression enumeration, priority vetoes, frame
//! conditions, decoding, replay).
//!
//! For every random system where exhaustive BFS completes we assert:
//!
//! * existence agreement — BMC finds a counterexample iff BFS does (BFS under
//!   both `Reduction::None` and `Reduction::Persistent` must already agree);
//! * *tight bounds* — with `ℓ` the BFS-shortest counterexample depth, BMC at
//!   bound `ℓ - 1` reports `NoViolationWithin`, and at bounds `ℓ` and `ℓ + 2`
//!   reports a violation whose trace has exactly `ℓ` steps (BMC scans depths
//!   in order, so it must find the shortest witness);
//! * declined systems decline *loudly* — when the width analysis cannot
//!   bound a variable the BMC returns `BmcError::Encode(UnboundedVar)`, never
//!   a silently-truncated verdict.

use bip_core::{dining_philosophers, StatePred};
use bip_verify::bmc::{BmcConfig, BmcError, BmcOutcome};
use bip_verify::reach::{check_invariant_with, ReachConfig, Reduction};
use bip_verify::BmcReport;
use proptest::prelude::*;

mod common;
use common::random_system;

/// Max BFS-shortest counterexample depth we chase with tight BMC bounds;
/// deeper bugs still get the existence check at `GENEROUS_BOUND`.
const TIGHT_DEPTH_LIMIT: usize = 8;
/// Bound used for the "no violation anywhere" and deep-bug existence checks.
const GENEROUS_BOUND: usize = 10;

/// A seed-dependent invariant for `sys` that mixes location and data
/// predicates: even seeds claim comp 0 never reaches its last location, odd
/// seeds (when comp 0 has variables) claim `v0` never equals 2.
fn pick_invariant(sys: &bip_core::System, seed: u64) -> StatePred {
    let ty = sys.atom_type(0);
    let last_loc = (ty.locations().len() - 1) as u32;
    if seed % 2 == 1 && !ty.vars().is_empty() {
        StatePred::Eq(bip_core::GExpr::var(0, 0), bip_core::GExpr::int(2)).not()
    } else {
        StatePred::at_loc(0, last_loc).not()
    }
}

/// Run BMC at `bound`, asserting the encoder accepted the system.
fn bmc_at(sys: &bip_core::System, inv: &StatePred, bound: usize) -> BmcReport {
    BmcConfig::new(sys)
        .bound(bound)
        .check_invariant(inv)
        .expect("encoder accepted this system at another bound")
}

/// Core agreement check for one random system; returns `Err` for proptest.
fn check_agreement(seed: u64) -> Result<(), String> {
    let sys = random_system(seed);
    let inv = pick_invariant(&sys, seed);

    let bfs = check_invariant_with(&sys, &inv, &ReachConfig::bounded(100_000));
    if !bfs.complete {
        return Ok(()); // state space outgrew the budget; nothing exact to compare
    }
    let por = check_invariant_with(
        &sys,
        &inv,
        &ReachConfig::bounded(100_000).reduction(Reduction::Persistent),
    );
    if bfs.violation.is_some() != por.violation.is_some() {
        return Err(format!(
            "explicit engines disagree on seed {seed}: bfs={:?} por={:?}",
            bfs.violation.is_some(),
            por.violation.is_some()
        ));
    }

    let probe = BmcConfig::new(&sys).bound(0).check_invariant(&inv);
    if let Err(e) = probe {
        // The encoder may decline (unbounded variable / support too large);
        // that must be a typed decline, and then there is nothing to compare.
        match e {
            BmcError::Encode(_) => return Ok(()),
            other => return Err(format!("seed {seed}: unexpected BMC error {other}")),
        }
    }

    match &bfs.violation {
        Some((_, trace)) => {
            let depth = trace.len();
            if depth > TIGHT_DEPTH_LIMIT {
                // Too deep to unroll cheaply; at least the generous bound
                // must not claim a spurious proof below the bug depth.
                let r = bmc_at(&sys, &inv, GENEROUS_BOUND.min(depth - 1));
                if r.violation().is_some() {
                    return Err(format!(
                        "seed {seed}: BMC found a violation above bound {} but BFS says the \
                         shallowest is at depth {depth}",
                        GENEROUS_BOUND.min(depth - 1)
                    ));
                }
                return Ok(());
            }
            if depth > 0 {
                let below = bmc_at(&sys, &inv, depth - 1);
                if !matches!(below.outcome, BmcOutcome::NoViolationWithin(_)) {
                    return Err(format!(
                        "seed {seed}: BMC found a violation at bound {} but the BFS-shortest \
                         counterexample has depth {depth}",
                        depth - 1
                    ));
                }
            }
            for bound in [depth, depth + 2] {
                let at = bmc_at(&sys, &inv, bound);
                match &at.outcome {
                    BmcOutcome::Violation { trace: t, states } => {
                        if t.len() != depth {
                            return Err(format!(
                                "seed {seed}: BMC trace at bound {bound} has {} steps, BFS \
                                 shortest is {depth}",
                                t.len()
                            ));
                        }
                        if states.len() != depth + 1 {
                            return Err(format!(
                                "seed {seed}: BMC reported {} states for a {depth}-step trace",
                                states.len()
                            ));
                        }
                    }
                    BmcOutcome::NoViolationWithin(k) => {
                        return Err(format!(
                            "seed {seed}: BMC claims no violation within {k} but BFS finds one \
                             at depth {depth}"
                        ));
                    }
                }
            }
        }
        None => {
            for bound in [0, 3, GENEROUS_BOUND] {
                let r = bmc_at(&sys, &inv, bound);
                if let Some((trace, _)) = r.violation() {
                    return Err(format!(
                        "seed {seed}: BMC reports a {}-step violation at bound {bound} but \
                         exhaustive BFS proves the invariant",
                        trace.len()
                    ));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random systems: symbolic and explicit engines must agree exactly
    /// (existence, shortest depth, trace shape) wherever BFS completes.
    #[test]
    fn bmc_agrees_with_explicit_search(seed in 0u64..192) {
        if let Err(msg) = check_agreement(seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Dining philosophers (two-phase, deadlocking variant): the all-`hasL`
/// configuration is reachable in exactly `n` steps — BMC must agree with the
/// explicit engine at the bound just below, exactly at, and above the bug.
#[test]
fn philosophers_tight_crossing_generous_bounds() {
    for n in [2usize, 3, 4] {
        let sys = dining_philosophers(n, true).unwrap();
        // hasL is location index 1 of each philosopher (components 0..n).
        let all_has_l = StatePred::And((0..n).map(|i| StatePred::at_loc(i, 1)).collect());
        let inv = all_has_l.not();

        let bfs = check_invariant_with(&sys, &inv, &ReachConfig::bounded(1_000_000));
        assert!(bfs.complete);
        let (_, trace) = bfs
            .violation
            .as_ref()
            .expect("two-phase philosophers deadlock");
        assert_eq!(trace.len(), n, "BFS-shortest all-hasL depth for n={n}");

        // Tight: one below the bug depth proves nothing is reachable sooner.
        let below = bmc_at(&sys, &inv, n - 1);
        assert!(
            matches!(below.outcome, BmcOutcome::NoViolationWithin(_)),
            "n={n}: no all-hasL state within {} steps",
            n - 1
        );
        // Crossing: exactly at the bug depth the violation appears.
        let at = bmc_at(&sys, &inv, n);
        let (trace, states) = at.violation().expect("violation at the exact depth");
        assert_eq!(trace.len(), n);
        assert_eq!(states.len(), n + 1);
        // Generous: a larger bound still reports the shortest witness.
        let above = bmc_at(&sys, &inv, n + 3);
        let (trace, _) = above.violation().expect("violation below a generous bound");
        assert_eq!(trace.len(), n, "BMC scans depths in order: shortest wins");
    }
}

/// The conservative (deadlock-free) philosophers never reach all-eating
/// states with fewer eaters than ⌊n/2⌋ violated… more simply: mutual
/// exclusion of *adjacent* eaters holds at every bound.
#[test]
fn philosophers_conservative_adjacent_mutex_holds() {
    let n = 3usize;
    let sys = dining_philosophers(n, false).unwrap();
    // eating is location index 1 of each philosopher in the conservative
    // variant; adjacent philosophers share a fork and never eat together.
    let adjacent = (0..n).map(|i| StatePred::at_loc(i, 1).and(StatePred::at_loc((i + 1) % n, 1)));
    let inv = StatePred::Or(adjacent.collect()).not();

    let bfs = check_invariant_with(&sys, &inv, &ReachConfig::bounded(1_000_000));
    assert!(bfs.complete && bfs.violation.is_none());
    let r = bmc_at(&sys, &inv, 8);
    assert!(matches!(r.outcome, BmcOutcome::NoViolationWithin(8)));
    // The solver is persistent: variable counts must grow monotonically.
    let vars: Vec<usize> = r.frames.iter().map(|f| f.vars).collect();
    assert!(
        vars.windows(2).all(|w| w[1] > w[0]),
        "one solver, monotone vars: {vars:?}"
    );
}
