//! Cross-checks for the persistent-set partial-order reduction
//! (`ReachConfig::reduction(Reduction::Persistent)`):
//!
//! * **verdict equivalence** with `Reduction::None` on random systems for
//!   `explore` / `check_invariant` / `find_deadlock`, at a tight bound that
//!   truncates both searches, a crossing bound sized to the reduced state
//!   count (complete for one mode, truncating for the other), and a
//!   generous bound where both complete — when both runs are complete the
//!   deadlock *sets*, the `deadlock_free()` / `holds()` / `found()`
//!   verdicts, and the completeness flags must coincide exactly;
//! * **definitiveness**: any witness the reduced search returns (deadlock
//!   or invariant violation) is replayed step-by-step from the initial
//!   state and checked for real — bounded or not;
//! * **bit-identity across thread counts** under reduction: the whole
//!   report (states, transitions, deadlock order, completeness) is
//!   identical at 1, 2, and 8 workers, like every other engine mode.

use bip_core::{State, StatePred, Step, System};
use bip_verify::reach::{
    check_invariant_with, explore_with, find_deadlock_with, ReachConfig, Reduction,
};
use proptest::prelude::*;
use std::collections::HashSet;

mod common;
use common::random_system;

/// Replay a step trace from the initial state; returns the final state.
fn replay(sys: &System, trace: &[Step]) -> State {
    let mut st = sys.initial_state();
    for step in trace {
        match step {
            Step::Interaction {
                interaction,
                transitions,
            } => sys.fire_interaction(&mut st, interaction, transitions),
            Step::Internal {
                component,
                transition,
            } => sys.fire_local(&mut st, *component, *transition),
        }
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Explore: on complete runs the reduced search preserves the deadlock
    /// set and the completeness flag while never storing more states; on
    /// truncated runs its `complete == false` is honest in both modes.
    #[test]
    fn persistent_explore_matches_none_verdicts(seed in 0u64..200) {
        let sys = random_system(seed);
        let full = explore_with(&sys, &ReachConfig::bounded(8_000));
        let red = explore_with(
            &sys,
            &ReachConfig::bounded(8_000).reduction(Reduction::Persistent),
        );
        prop_assert!(red.states <= full.states, "reduction never grows the stored set");
        if full.complete {
            prop_assert!(red.complete, "reduced ⊆ full: a complete full run forces a complete reduced run");
            let a: HashSet<&State> = red.deadlocks.iter().collect();
            let b: HashSet<&State> = full.deadlocks.iter().collect();
            prop_assert_eq!(a, b);
            prop_assert_eq!(red.deadlock_free(), full.deadlock_free());
        }
        // Crossing bound: complete for the reduced graph, possibly
        // truncating the full one — verdicts that claim completeness must
        // still be trustworthy on the reduced side.
        if full.complete && red.states < full.states {
            let crossing = explore_with(
                &sys,
                &ReachConfig::bounded(red.states).reduction(Reduction::Persistent),
            );
            prop_assert!(crossing.complete, "bound == |reduced| loses nothing");
            let a: HashSet<&State> = crossing.deadlocks.iter().collect();
            let b: HashSet<&State> = full.deadlocks.iter().collect();
            prop_assert_eq!(a, b);
        }
        // Tight bound: both truncate; both must say so.
        let tight_full = explore_with(&sys, &ReachConfig::bounded(7));
        let tight_red = explore_with(
            &sys,
            &ReachConfig::bounded(7).reduction(Reduction::Persistent),
        );
        prop_assert_eq!(tight_full.states <= 7, true);
        prop_assert_eq!(tight_red.states <= 7, true);
        if !tight_full.complete {
            prop_assert!(!tight_full.deadlock_free());
        }
        if !tight_red.complete {
            prop_assert!(!tight_red.deadlock_free());
        }
    }

    /// Deadlock search: verdict equivalence on complete runs; a reduced
    /// witness is always a genuine deadlock with a replayable trace.
    #[test]
    fn persistent_find_deadlock_matches_none_verdicts(seed in 0u64..200) {
        let sys = random_system(seed);
        for bound in [4_000usize, 29] {
            let full = find_deadlock_with(&sys, &ReachConfig::bounded(bound));
            let red = find_deadlock_with(
                &sys,
                &ReachConfig::bounded(bound).reduction(Reduction::Persistent),
            );
            if full.complete && red.complete {
                prop_assert_eq!(full.found(), red.found());
                prop_assert_eq!(full.deadlock_free(), red.deadlock_free());
            }
            if let Some((st, trace)) = &red.witness {
                prop_assert_eq!(&replay(&sys, trace), st);
                prop_assert!(sys.successors(st).is_empty(), "witness is a real deadlock");
            }
            if full.complete && !full.found() {
                // Deadlock-freedom is preserved: the reduced search cannot
                // invent a deadlock the full one lacks.
                prop_assert!(!red.found());
            }
        }
    }

    /// Invariant checking: verdict equivalence on complete runs (the
    /// visibility check plus cycle proviso make the reduced verdict exact),
    /// and any reduced violation is genuine.
    #[test]
    fn persistent_check_invariant_matches_none_verdicts(seed in 0u64..200) {
        let sys = random_system(seed);
        let inv = StatePred::at(&sys, 0, "l0");
        for bound in [4_000usize, 29] {
            let full = check_invariant_with(&sys, &inv, &ReachConfig::bounded(bound));
            let red = check_invariant_with(
                &sys,
                &inv,
                &ReachConfig::bounded(bound).reduction(Reduction::Persistent),
            );
            if full.complete && red.complete {
                prop_assert_eq!(full.holds(), red.holds());
                prop_assert_eq!(full.violation.is_some(), red.violation.is_some());
            }
            if let Some((st, trace)) = &red.violation {
                prop_assert_eq!(&replay(&sys, trace), st);
                prop_assert!(!inv.eval(&sys, st), "witness genuinely violates");
            }
            if full.complete && full.violation.is_none() {
                prop_assert!(red.violation.is_none(), "no false positives under reduction");
            }
        }
    }

    /// Bit-identity across 1/2/8 worker threads under reduction, for every
    /// explorer, at a truncating and a generous bound.
    #[test]
    fn persistent_reports_are_thread_count_invariant(seed in 0u64..120) {
        let sys = random_system(seed);
        for bound in [6_000usize, 31] {
            let base = ReachConfig::bounded(bound).reduction(Reduction::Persistent);
            let e1 = explore_with(&sys, &base);
            let d1 = find_deadlock_with(&sys, &base);
            let inv = StatePred::at(&sys, 0, "l0");
            let i1 = check_invariant_with(&sys, &inv, &base);
            for threads in [2usize, 8] {
                let cfg = base.clone().threads(threads).min_parallel_level(1);
                let e = explore_with(&sys, &cfg);
                prop_assert_eq!(e.states, e1.states);
                prop_assert_eq!(e.transitions, e1.transitions);
                prop_assert_eq!(&e.deadlocks, &e1.deadlocks);
                prop_assert_eq!(e.complete, e1.complete);
                prop_assert_eq!(e.stored_bytes, e1.stored_bytes);
                let d = find_deadlock_with(&sys, &cfg);
                prop_assert_eq!(&d.witness, &d1.witness);
                prop_assert_eq!(d.states, d1.states);
                prop_assert_eq!(d.complete, d1.complete);
                let i = check_invariant_with(&sys, &inv, &cfg);
                prop_assert_eq!(&i.violation, &i1.violation);
                prop_assert_eq!(i.states, i1.states);
                prop_assert_eq!(i.complete, i1.complete);
            }
        }
    }
}
