//! Integration tests for experiment E1: compositional vs monolithic
//! verification agree, and the cost gap has the claimed shape.

use bip_core::dining_philosophers;
use bip_verify::reach::explore;
use bip_verify::DFinder;

#[test]
fn verdicts_agree_with_exact_checker_across_family() {
    for n in 2..=6 {
        for &two_phase in &[false, true] {
            let sys = dining_philosophers(n, two_phase).unwrap();
            let df = DFinder::new(&sys).check_deadlock_freedom();
            let exact = explore(&sys, 10_000_000);
            assert!(exact.complete, "n={n}");
            if df.verdict.is_deadlock_free() {
                assert!(
                    exact.deadlocks.is_empty(),
                    "unsound at n={n} two_phase={two_phase}"
                );
            } else {
                // Our candidates are allowed to be spurious in general, but
                // on this family they never are:
                assert!(
                    !exact.deadlocks.is_empty(),
                    "imprecise at n={n} two_phase={two_phase}"
                );
            }
        }
    }
}

#[test]
fn monolithic_state_count_grows_exponentially() {
    // Conservative variant: reachable states are independent sets on a
    // cycle (Lucas numbers, ratio → φ ≈ 1.62); two-phase adds the hasL
    // interleavings and grows faster. Both are exponential.
    for &two_phase in &[false, true] {
        let counts: Vec<usize> = (2..=7)
            .map(|n| explore(&dining_philosophers(n, two_phase).unwrap(), 10_000_000).states)
            .collect();
        for w in counts.windows(2) {
            assert!(
                w[1] as f64 / w[0] as f64 >= 1.25,
                "two_phase={two_phase}: {counts:?}"
            );
        }
        assert!(
            *counts.last().unwrap() as f64 / counts[0] as f64 >= 8.0,
            "two_phase={two_phase}: {counts:?}"
        );
    }
}

#[test]
fn compositional_abstraction_grows_linearly() {
    let sizes: Vec<usize> = (2..=8)
        .map(|n| {
            let sys = dining_philosophers(n, false).unwrap();
            let df = DFinder::new(&sys);
            df.abstraction().num_places
        })
        .collect();
    // Places = 4n: exactly linear.
    for (i, &s) in sizes.iter().enumerate() {
        assert_eq!(s, 4 * (i + 2));
    }
}

#[test]
fn gas_station_benchmark() {
    // The other standard D-Finder benchmark: one pump, k customers, an
    // operator. Customers prepay the operator, then pump.
    for k in 2..=4 {
        let sys = bench::gas_station(k);
        let df = DFinder::new(&sys).check_deadlock_freedom();
        let exact = explore(&sys, 1_000_000);
        assert!(exact.complete);
        assert!(exact.deadlocks.is_empty());
        assert!(df.verdict.is_deadlock_free(), "k={k}: {df:?}");
    }
}
