//! End-to-end integration: the rigorous design flow of Fig. 5.6 (E11).

use bip_distributed::deploy::single_block;
use bip_distributed::{deploy, refine_interactions, Crp};
use bip_embed::{embed_program, integrator};
use bip_verify::{refines, DFinder};
use netsim::Latency;

#[test]
fn full_pipeline_integrator() {
    // Embed.
    let program = integrator();
    let embedded = embed_program(&program).unwrap();
    // Verify the application model compositionally.
    let report = DFinder::new(&embedded.system).check_deadlock_freedom();
    assert!(report.verdict.is_deadlock_free());
    // Execute and compare with the reference interpreter.
    let xs = vec![vec![2, -1, 5, 0, 3]];
    assert_eq!(embedded.run(&xs, 5), program.eval(&xs, 5));
}

#[test]
fn full_pipeline_distribution() {
    let sys = bip_core::dining_philosophers(4, false).unwrap();
    // Compositional certificate on the source model.
    assert!(DFinder::new(&sys)
        .check_deadlock_freedom()
        .verdict
        .is_deadlock_free());
    // Deploy under every CRP; the observable word must replay in the
    // source semantics (vertical correctness, runtime-checked).
    for crp in Crp::all() {
        let run = deploy(&sys, &single_block(&sys), crp, 15_000, Latency::Fixed(2), 3);
        assert!(run.total_interactions > 0, "{}", crp.name());
        let mut st = sys.initial_state();
        for label in &run.word {
            let succ = sys.successors(&st);
            let hit = succ
                .iter()
                .find(|(s, _)| sys.step_label(s) == Some(label.as_str()))
                .unwrap_or_else(|| panic!("{}: fired {label} not enabled", crp.name()));
            st = hit.1.clone();
        }
    }
}

#[test]
fn refinement_certificate_gates_the_flow() {
    // Conflict-free: certificate passes, flow proceeds.
    let barrier = {
        let w = bip_core::AtomBuilder::new("w")
            .port("sync")
            .location("run")
            .initial("run")
            .transition("run", "sync", "run")
            .build()
            .unwrap();
        let mut sb = bip_core::SystemBuilder::new();
        let a = sb.add_instance("a", &w);
        let b = sb.add_instance("b", &w);
        sb.add_connector(bip_core::ConnectorBuilder::rendezvous(
            "s",
            [(a, "sync"), (b, "sync")],
        ));
        sb.build().unwrap()
    };
    let ref1 = refine_interactions(&barrier).unwrap();
    assert!(refines(&barrier, &ref1.system, ref1.rename(), 100_000).refines());

    // Conflicting: certificate fails — the flow must fall back to layer 3.
    let phils = bip_core::dining_philosophers(2, false).unwrap();
    let ref2 = refine_interactions(&phils).unwrap();
    assert!(!refines(&phils, &ref2.system, ref2.rename(), 2_000_000).refines());
}
