//! Integration tests for experiment E3: glue expressiveness (§5.3.2, [5]).

use bip_core::expressiveness::{priorities_express_broadcast, refute_broadcast_with_interactions};

#[test]
fn interaction_only_glue_cannot_express_broadcast() {
    let r = refute_broadcast_with_interactions();
    assert!(r.glues_checked >= 7);
    assert_eq!(
        r.equivalent_found, 0,
        "the paper's claim: interactions alone lose universal expressiveness"
    );
}

#[test]
fn interactions_plus_priorities_recover_it() {
    assert!(
        priorities_express_broadcast(),
        "BIP glue (interactions + priorities) matches the broadcast semantics"
    );
}
