//! Parallel compositional verification: the deterministic-parallelism
//! contract of `bip-verify::dfinder` (reports bit-identical for every
//! thread count) on hand-written and random systems, plus invariant
//! preservation across incremental growth.

use bip_core::dining_philosophers;
use bip_verify::dfinder::{enumerate_traps_with, Abstraction, DFinder, DFinderConfig};
use bip_verify::IncrementalVerifier;
use proptest::prelude::*;

mod common;
use common::random_system;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel trap enumeration ≡ sequential on random systems: the trap
    /// list — order included — and the full `DFinderReport` must be
    /// bit-identical for `threads ∈ {1, 2, 8}`.
    #[test]
    fn parallel_trap_enumeration_matches_sequential(seed in 0u64..200) {
        let sys = random_system(seed);
        let abs = Abstraction::new(&sys);
        let seq = enumerate_traps_with(&abs, &DFinderConfig::new());
        for threads in [2usize, 8] {
            let par = enumerate_traps_with(&abs, &DFinderConfig::new().threads(threads));
            prop_assert_eq!(&par, &seq);
        }
        // Every enumerated trap is a real, initially-marked trap.
        for t in &seq {
            prop_assert!(abs.is_trap(t), "seed {}: not a trap: {:?}", seed, t);
            prop_assert!(
                abs.initial.iter().any(|&p| t.contains(p)),
                "seed {}: unmarked trap {:?}", seed, t
            );
        }
        let r1 = DFinder::with_config(&sys, &DFinderConfig::new()).check_deadlock_freedom();
        let r8 = DFinder::with_config(&sys, &DFinderConfig::new().threads(8))
            .check_deadlock_freedom();
        prop_assert_eq!(r1, r8);
    }
}

/// `DFinderReport` bit-identity across `threads ∈ {1, 2, 8}` on the
/// experiment-E1 family (the acceptance shape of the E12 bench, asserted in
/// the fast test suite too).
#[test]
fn reports_bit_identical_across_thread_counts_on_philosophers() {
    for n in [3usize, 6] {
        for two_phase in [false, true] {
            let sys = dining_philosophers(n, two_phase).unwrap();
            let r1 = DFinder::with_config(&sys, &DFinderConfig::new()).check_deadlock_freedom();
            for threads in [2usize, 8] {
                let rt = DFinder::with_config(&sys, &DFinderConfig::new().threads(threads))
                    .check_deadlock_freedom();
                assert_eq!(r1, rt, "n={n} two_phase={two_phase} threads={threads}");
            }
        }
    }
}

/// Regression: `IncrementalVerifier::add_interaction` preserves every
/// previously-found trap that satisfies the sufficient condition, across
/// additions that force the sharded trap arena to grow (the store starts
/// with tiny 8-slot shard tables precisely so this path is routinely
/// exercised; a `max_traps` of 512 on 8 philosophers overflows several
/// shards).
#[test]
fn incremental_preserves_traps_across_arena_growth() {
    let n = 8;
    let full = dining_philosophers(n, false).unwrap();
    // Start from the release connectors only; add the eat interactions one
    // at a time, checking preservation at every step.
    let mut sb = bip_core::SystemBuilder::new();
    for c in 0..full.num_components() {
        sb.add_instance(full.instance_name(c).to_string(), full.atom_type(c));
    }
    for conn in full.connectors() {
        if conn.name.starts_with("rel") {
            sb.add_connector(conn.clone());
        }
    }
    let base = sb.build().unwrap();
    let mut inc =
        IncrementalVerifier::with_config(base, DFinderConfig::new().max_traps(512).threads(2));
    assert!(!inc.traps().is_empty());

    for conn in full.connectors() {
        if !conn.name.starts_with("eat") {
            continue;
        }
        let before = inc.traps().to_vec();
        // Predict which traps the sufficient condition keeps: those the
        // *new* abstract transitions preserve.
        let mut sb = bip_core::SystemBuilder::new();
        for c in 0..inc.system().num_components() {
            sb.add_instance(
                inc.system().instance_name(c).to_string(),
                inc.system().atom_type(c),
            );
        }
        for c in inc.system().connectors() {
            sb.add_connector(c.clone());
        }
        sb.add_connector(conn.clone());
        let new_abs = Abstraction::new(&sb.build().unwrap());
        let expected_kept: Vec<_> = before
            .iter()
            .filter(|t| new_abs.is_trap(t))
            .cloned()
            .collect();

        let stats = inc.add_interaction(conn.clone()).unwrap();
        assert_eq!(
            stats.traps_reused,
            expected_kept.len(),
            "reuse count must match the sufficient condition"
        );
        for t in &expected_kept {
            assert!(
                inc.traps().contains(t),
                "preserved trap lost across arena growth: {t:?}"
            );
        }
    }
    // The grown invariant set still proves the conservative family safe.
    assert!(inc.check_deadlock_freedom().verdict.is_deadlock_free());
}
