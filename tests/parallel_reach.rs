//! Cross-checks for the packed-state parallel reachability engine:
//!
//! * the sharded parallel BFS returns *identical* reports for every thread
//!   count, bounded or complete, on random systems and philosophers;
//! * on complete explorations the new engine agrees exactly with a verbatim
//!   reference of the PR-1 sequential explorer (full-`State` `HashMap`);
//! * the [`bip_core::StateCodec`] round-trips every reachable state of
//!   random systems losslessly and injectively — under the full-width
//!   reference codec *and* the adaptive narrow-width codec (whose width
//!   inference is thereby property-tested for soundness on reachable
//!   states);
//! * `explore`/`find_deadlock`/`check_invariant` reports are bit-identical
//!   between the adaptive and full-width codecs, for every thread count,
//!   bounded or not (differential codec testing);
//! * a deliberately narrowed starting codec ([`CodecMode::Custom`]) forces
//!   the repack-on-widen path mid-search and must change nothing about the
//!   reports.

use std::collections::{HashMap, HashSet, VecDeque};

// The verbatim PR-1 explorer, shared with the E11 bench so the reference
// the proptests verify against is the one the bench measures against.
use bench::pr1_explore as reference_explore;
use bip_core::{dining_philosophers, State, StateCodec, StatePred};
use bip_verify::reach::{
    check_invariant_with, explore_with, find_deadlock_with, CodecMode, ReachConfig, ReachReport,
};
use proptest::prelude::*;

mod common;
use common::random_system;

fn assert_reports_equal(a: &ReachReport, b: &ReachReport, ctx: &str) -> Result<(), String> {
    if a.states != b.states
        || a.transitions != b.transitions
        || a.complete != b.complete
        || a.deadlocks != b.deadlocks
    {
        return Err(format!(
            "{ctx}: reports diverged: ({}, {}, {}, {} deadlocks) vs ({}, {}, {}, {} deadlocks)",
            a.states,
            a.transitions,
            a.complete,
            a.deadlocks.len(),
            b.states,
            b.transitions,
            b.complete,
            b.deadlocks.len()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel and sequential `explore` agree exactly — states,
    /// transitions, deadlock list (order included), completeness — on
    /// random systems, both under a generous bound and under a tight one
    /// that truncates the search.
    #[test]
    fn parallel_explore_matches_sequential_on_random_systems(seed in 0u64..200) {
        let sys = random_system(seed);
        for bound in [8_000usize, 37] {
            let seq = explore_with(&sys, &ReachConfig::bounded(bound));
            for threads in [2usize, 4] {
                let par = explore_with(&sys, &ReachConfig::bounded(bound).threads(threads).min_parallel_level(1));
                if let Err(e) = assert_reports_equal(&par, &seq, &format!("seed {seed} bound {bound} threads {threads}")) {
                    prop_assert!(false, "{}", e);
                }
            }
        }
    }

    /// On complete explorations the new engine reproduces the PR-1
    /// reference explorer exactly (the deadlock *set* — discovery order
    /// within a BFS level may differ from the FIFO reference).
    #[test]
    fn new_engine_matches_pr1_reference_when_complete(seed in 0u64..200) {
        let sys = random_system(seed);
        let new = explore_with(&sys, &ReachConfig::bounded(8_000));
        if new.complete {
            let reference = reference_explore(&sys, 8_000);
            prop_assert!(reference.complete);
            prop_assert_eq!(new.states, reference.states);
            prop_assert_eq!(new.transitions, reference.transitions);
            let a: HashSet<State> = new.deadlocks.iter().cloned().collect();
            let b: HashSet<State> = reference.deadlocks.iter().cloned().collect();
            prop_assert_eq!(a, b);
        }
    }

    /// Deadlock search and invariant checking return the same witness,
    /// state count, and completeness for every thread count.
    #[test]
    fn parallel_witness_searches_match_sequential(seed in 0u64..120) {
        let sys = random_system(seed);
        for bound in [4_000usize, 29] {
            let ds = find_deadlock_with(&sys, &ReachConfig::bounded(bound));
            let dp = find_deadlock_with(&sys, &ReachConfig::bounded(bound).threads(4).min_parallel_level(1));
            prop_assert_eq!(&ds.witness, &dp.witness);
            prop_assert_eq!(ds.states, dp.states);
            prop_assert_eq!(ds.complete, dp.complete);

            let inv = StatePred::at(&sys, 0, "l0");
            let is = check_invariant_with(&sys, &inv, &ReachConfig::bounded(bound));
            let ip = check_invariant_with(&sys, &inv, &ReachConfig::bounded(bound).threads(4).min_parallel_level(1));
            prop_assert_eq!(&is.violation, &ip.violation);
            prop_assert_eq!(is.states, ip.states);
            prop_assert_eq!(is.complete, ip.complete);
        }
    }

    /// The codec round-trips every state reachable within a budget,
    /// losslessly and injectively.
    #[test]
    fn codec_roundtrips_reachable_states(seed in 0u64..200) {
        let sys = random_system(seed);
        let codec = sys.state_codec();
        let mut rev: HashMap<bip_core::PackedState, State> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(sys.initial_state());
        while let Some(st) = queue.pop_front() {
            if rev.len() >= 2_000 {
                break;
            }
            let p = codec.encode(&st);
            prop_assert_eq!(&codec.decode(&p), &st);
            match rev.get(&p) {
                Some(prev) => {
                    prop_assert_eq!(prev, &st);
                    continue;
                }
                None => {
                    rev.insert(p, st.clone());
                }
            }
            for (_, next) in sys.successors(&st) {
                queue.push_back(next);
            }
        }
    }

    /// Philosophers: thread-count invariance holds on both variants at
    /// tight, crossing, and generous bounds (the bound-crossing level takes
    /// the deterministic merge path).
    #[test]
    fn philosophers_thread_invariance(n in 2usize..6, seed in 0u64..40) {
        let sys = dining_philosophers(n, seed % 2 == 1).unwrap();
        let bound = [3usize, 17, 100, 1_000_000][(seed % 4) as usize];
        let seq = explore_with(&sys, &ReachConfig::bounded(bound));
        let par = explore_with(&sys, &ReachConfig::bounded(bound).threads(4).min_parallel_level(1));
        if let Err(e) = assert_reports_equal(&par, &seq, &format!("phil {n} bound {bound}")) {
            prop_assert!(false, "{}", e);
        }
    }

    /// The adaptive codec round-trips every state reachable within a budget,
    /// losslessly and injectively — which also property-tests the width
    /// inference for soundness: a reachable value outside its inferred
    /// range would make `try_encode` fail here.
    #[test]
    fn adaptive_codec_roundtrips_reachable_states(seed in 0u64..200) {
        let sys = random_system(seed);
        let codec = sys.adaptive_codec();
        let full = sys.state_codec();
        let mut rev: HashMap<bip_core::PackedState, State> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(sys.initial_state());
        while let Some(st) = queue.pop_front() {
            if rev.len() >= 2_000 {
                break;
            }
            let p = match codec.try_encode(&st) {
                Ok(p) => p,
                Err(r) => return Err(format!(
                    "reachable state overflowed inferred width: {r:?} in {}",
                    sys.describe_state(&st)
                )),
            };
            prop_assert_eq!(&codec.decode(&p), &st);
            // Canonical hashes agree across codecs on every state.
            prop_assert_eq!(codec.state_hash(&st), full.state_hash(&st));
            match rev.get(&p) {
                Some(prev) => {
                    prop_assert_eq!(prev, &st);
                    continue;
                }
                None => {
                    rev.insert(p, st.clone());
                }
            }
            for (_, next) in sys.successors(&st) {
                queue.push_back(next);
            }
        }
    }

    /// Differential codec testing: every explorer returns bit-identical
    /// reports under the adaptive and the full-width codec, sequentially
    /// and in parallel, bounded or not.
    #[test]
    fn adaptive_and_full_width_codecs_agree(seed in 0u64..120) {
        let sys = random_system(seed);
        for bound in [6_000usize, 31] {
            let full = explore_with(&sys, &ReachConfig::bounded(bound).full_width_codec());
            for threads in [1usize, 4] {
                let cfg = ReachConfig::bounded(bound).threads(threads).min_parallel_level(1);
                let ad = explore_with(&sys, &cfg);
                if let Err(e) = assert_reports_equal(&ad, &full, &format!("seed {seed} bound {bound} threads {threads}")) {
                    prop_assert!(false, "{}", e);
                }

                let df = find_deadlock_with(&sys, &cfg.clone().full_width_codec());
                let da = find_deadlock_with(&sys, &cfg);
                prop_assert_eq!(&da.witness, &df.witness);
                prop_assert_eq!(da.states, df.states);
                prop_assert_eq!(da.complete, df.complete);

                let inv = StatePred::at(&sys, 0, "l0");
                let ifull = check_invariant_with(&sys, &inv, &cfg.clone().full_width_codec());
                let iad = check_invariant_with(&sys, &inv, &cfg);
                prop_assert_eq!(&iad.violation, &ifull.violation);
                prop_assert_eq!(iad.states, ifull.states);
                prop_assert_eq!(iad.complete, ifull.complete);
            }
        }
    }

    /// Repack-on-widen: starting from a deliberately narrowed codec (every
    /// variable squeezed to 1 bit), the engine must widen mid-search and
    /// still reproduce the full-width reports exactly, for every thread
    /// count and under truncating bounds.
    #[test]
    fn forced_widen_preserves_reports(seed in 0u64..120) {
        let sys = random_system(seed);
        let nvars = sys.initial_state().vars.len();
        let narrowed = || {
            let mut codec = sys.adaptive_codec();
            for v in 0..nvars {
                codec = codec.with_narrowed_var(&sys, v, 1);
            }
            codec
        };
        if nvars == 0 {
            // Nothing to narrow: no variables, no widen path to exercise.
            return Ok(());
        }
        for bound in [6_000usize, 31] {
            let full = explore_with(&sys, &ReachConfig::bounded(bound).full_width_codec());
            for threads in [1usize, 4] {
                let cfg = ReachConfig::bounded(bound)
                    .threads(threads)
                    .min_parallel_level(1)
                    .with_codec(narrowed());
                let r = explore_with(&sys, &cfg);
                if let Err(e) = assert_reports_equal(&r, &full, &format!("widen seed {seed} bound {bound} threads {threads}")) {
                    prop_assert!(false, "{}", e);
                }
                let df = find_deadlock_with(&sys, &ReachConfig::bounded(bound).threads(threads).min_parallel_level(1).full_width_codec());
                let dn = find_deadlock_with(&sys, &cfg);
                prop_assert_eq!(&dn.witness, &df.witness);
                prop_assert_eq!(dn.states, df.states);
                prop_assert_eq!(dn.complete, df.complete);
            }
        }
    }
}

/// `CodecMode` is part of the public configuration surface; make sure the
/// custom variant is constructible the documented way.
#[test]
fn codec_mode_custom_is_usable() {
    let sys = dining_philosophers(3, true).unwrap();
    let cfg = ReachConfig {
        codec: CodecMode::Custom(StateCodec::adaptive(&sys)),
        ..ReachConfig::bounded(10_000)
    };
    let custom = explore_with(&sys, &cfg);
    let default = explore_with(&sys, &ReachConfig::bounded(10_000));
    assert_eq!(custom.states, default.states);
    assert_eq!(custom.transitions, default.transitions);
    assert_eq!(custom.deadlocks, default.deadlocks);
    assert_eq!(custom.stored_bytes, default.stored_bytes);
}
