//! Property-based tests (proptest) on core invariants, spanning crates.

use bip_core::{AtomBuilder, ConnectorBuilder, Expr, SystemBuilder};
use proptest::prelude::*;

mod common;
use common::random_system;

/// Walk `sys` for up to `steps` random steps; at every state assert that
/// the incremental [`bip_core::EnabledSet`] protocol yields exactly the
/// interaction set (and internal steps) the legacy enumeration computes.
fn check_incremental_matches_legacy(
    sys: &bip_core::System,
    steps: usize,
    seed: u64,
) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut st = sys.initial_state();
    let mut es = sys.new_enabled_set();
    let mut compiled = Vec::new();
    for step_no in 0..steps {
        sys.refresh_enabled(&st, &mut es);
        compiled.clear();
        sys.for_each_enabled(&st, &es, |s| compiled.push(s));
        let legacy: Vec<bip_core::Interaction> = sys.enabled(&st);
        let compiled_inters: Vec<bip_core::Interaction> = compiled
            .iter()
            .filter_map(|s| match s {
                bip_core::EnabledStep::Interaction(ir) => Some(sys.resolve_ref(*ir)),
                _ => None,
            })
            .collect();
        if compiled_inters != legacy {
            return Err(format!(
                "interaction sets diverged at step {step_no}: compiled {compiled_inters:?} vs legacy {legacy:?}"
            ));
        }
        let legacy_internal = sys.internal_steps(&st).len();
        let compiled_internal = compiled
            .iter()
            .filter(|s| matches!(s, bip_core::EnabledStep::Internal { .. }))
            .count();
        if compiled_internal != legacy_internal {
            return Err(format!(
                "internal step counts diverged at step {step_no}: {compiled_internal} vs {legacy_internal}"
            ));
        }
        if compiled.is_empty() {
            break; // deadlock
        }
        let chosen = compiled[rng.gen_range(0..compiled.len())];
        sys.fire_enabled(&mut st, &mut es, chosen, |_, _, cands| {
            rng.gen_range(0..cands.len())
        });
    }
    Ok(())
}

/// Build a ring of `n` workers where worker i synchronizes with worker i+1,
/// guards parameterized by `limit`.
fn ring(n: usize, limit: i64) -> bip_core::System {
    let w = AtomBuilder::new("w")
        .var("c", 0)
        .port("left")
        .port("right")
        .location("l")
        .initial("l")
        .guarded_transition(
            "l",
            "left",
            Expr::var(0).lt(Expr::int(limit)),
            vec![("c", Expr::var(0).add(Expr::int(1)))],
            "l",
        )
        .transition("l", "right", "l")
        .build()
        .unwrap();
    let mut sb = SystemBuilder::new();
    let ids: Vec<usize> = (0..n)
        .map(|i| sb.add_instance(format!("w{i}"), &w))
        .collect();
    for i in 0..n {
        sb.add_connector(ConnectorBuilder::rendezvous(
            format!("link{i}"),
            [(ids[i], "left"), (ids[(i + 1) % n], "right")],
        ));
    }
    sb.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Priorities only *restrict*: the filtered enabled set is a subset of
    /// the unfiltered one, and never empties a non-empty set (so priorities
    /// cannot introduce deadlocks — the premise behind the D-Finder DIS
    /// encoding ignoring priorities).
    #[test]
    fn priorities_never_introduce_deadlock(n in 2usize..5, limit in 1i64..5, steps in 0usize..12, seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let mut sys = ring(n, limit);
        // Add an arbitrary unconditional rule between two connectors.
        let a = bip_core::ConnId((seed % n as u64) as u32);
        let b = bip_core::ConnId(((seed / 7) % n as u64) as u32);
        sys.priority_mut().add_rule(a, b);
        sys.priority_mut().maximal_progress = seed % 2 == 0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut st = sys.initial_state();
        for _ in 0..steps {
            let unfiltered = sys.enabled_unfiltered(&st);
            let filtered = sys.enabled(&st);
            for i in &filtered {
                prop_assert!(unfiltered.contains(i), "filtering added an interaction");
            }
            if !unfiltered.is_empty() {
                prop_assert!(!filtered.is_empty(), "priorities created a deadlock");
            }
            let succ = sys.successors(&st);
            if succ.is_empty() { break; }
            st = succ[rng.gen_range(0..succ.len())].1.clone();
        }
    }

    /// The simultaneous-update semantics of atoms: swapping twice is the
    /// identity on arbitrary starting values.
    #[test]
    fn swap_twice_is_identity(x in -1000i64..1000, y in -1000i64..1000) {
        let swap = AtomBuilder::new("swap")
            .var("x", x)
            .var("y", y)
            .port("go")
            .location("l")
            .initial("l")
            .guarded_transition("l", "go", Expr::t(),
                vec![("x", Expr::var(1)), ("y", Expr::var(0))], "l")
            .build().unwrap();
        let mut sb = SystemBuilder::new();
        let s = sb.add_instance("s", &swap);
        sb.add_connector(ConnectorBuilder::singleton("go", s, "go"));
        let sys = sb.build().unwrap();
        let mut st = sys.initial_state();
        sys.step(&mut st, |_| 0).unwrap();
        sys.step(&mut st, |_| 0).unwrap();
        prop_assert_eq!(sys.var_value(&st, s, 0), x);
        prop_assert_eq!(sys.var_value(&st, s, 1), y);
    }

    /// D-Finder soundness, property-based: on random ring systems, a
    /// DeadlockFree verdict implies the exact checker finds no deadlock.
    #[test]
    fn dfinder_sound_on_rings(n in 2usize..5, limit in 1i64..4) {
        let sys = ring(n, limit);
        let df = bip_verify::DFinder::new(&sys).check_deadlock_freedom();
        if df.verdict.is_deadlock_free() {
            let exact = bip_verify::reach::explore(&sys, 2_000_000);
            prop_assert!(exact.complete);
            prop_assert!(exact.deadlocks.is_empty());
        }
    }

    /// satkit: the model returned on SAT satisfies every clause (random
    /// 3-CNF near the phase transition).
    #[test]
    fn sat_models_are_models(seed in 0u64..300) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let nvars = 15usize;
        let mut s = satkit::Solver::new();
        s.reserve_vars(nvars);
        let mut clauses = Vec::new();
        for _ in 0..60 {
            let c: Vec<satkit::Lit> = (0..3)
                .map(|_| satkit::Lit::new(satkit::Var(rng.gen_range(0..nvars) as u32), rng.gen_bool(0.5)))
                .collect();
            s.add_clause(c.clone());
            clauses.push(c);
        }
        if s.solve().is_sat() {
            for c in &clauses {
                let ok = c.iter().any(|l| s.value(l.var()) == Some(l.sign()));
                prop_assert!(ok, "unsatisfied clause in model");
            }
        }
    }

    /// The compiled incremental enabled-set protocol agrees exactly with
    /// the legacy `enabled()` enumeration after every step of a random walk
    /// over dining-philosopher systems of varying size (both variants,
    /// satellite of the compiled-execution redesign).
    #[test]
    fn enabled_set_matches_legacy_on_philosophers(n in 2usize..8, seed in 0u64..1000) {
        let sys = bip_core::dining_philosophers(n, seed % 2 == 1).unwrap();
        if let Err(msg) = check_incremental_matches_legacy(&sys, 1000, seed) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Same agreement on fully random systems: random guarded atoms wired
    /// by random rendezvous/broadcast connectors under random priorities.
    #[test]
    fn enabled_set_matches_legacy_on_random_systems(seed in 0u64..400) {
        let sys = random_system(seed);
        if let Err(msg) = check_incremental_matches_legacy(&sys, 1000, seed ^ 0x9e37) {
            prop_assert!(false, "{}", msg);
        }
    }

    /// Timed execution: words produced under any φ are replayable in the
    /// untimed semantics (φ only slows things down, never invents steps).
    #[test]
    fn timed_words_replay_untimed(d0 in 0u64..6, d1 in 0u64..6, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let sys = bip_core::dining_philosophers(2, false).unwrap();
        let mut phi = bip_rt::DurationMap::ideal();
        phi.set(bip_core::ConnId(0), d0);
        phi.set(bip_core::ConnId(1), d1);
        let mut ex = bip_rt::TimedExecution::new(&sys, phi);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let report = ex.run(200, 30, |opts| rng.gen_range(0..opts.len()));
        let mut st = sys.initial_state();
        for (_, label) in &report.timed_word {
            let succ = sys.successors(&st);
            let hit = succ.iter().find(|(s, _)| sys.step_label(s) == Some(label.as_str()));
            prop_assert!(hit.is_some(), "timed word not replayable at {label}");
            st = hit.unwrap().1.clone();
        }
    }
}
