//! Property tests for the fault-injection transform (`bip_core::fault`).
//!
//! Two laws on random systems (see `common::random_system` — random guarded
//! atoms, rendezvous/broadcast/singleton connectors, random priority
//! layers):
//!
//! 1. **Zero faults ⇒ bisimilar.** A `FaultSpec` with no fault enabled —
//!    either nothing crashable, or everything crashable under a
//!    `max_concurrent_faults` budget of 0 — must leave the behavior
//!    untouched: walking original and transformed systems in lockstep,
//!    every state has the same `successors()` set (steps and
//!    fault-projected states) in both.
//! 2. **Every introduced crash state is reachable.** Under an unrecoverable
//!    crash-all spec, each crashable component's `__crashed` location is
//!    reachable — already at depth 1, since the crash transition leaves
//!    every original location and the monitor budget starts free.

mod common;

use std::collections::{HashSet, VecDeque};

use bip_core::fault::{self, FaultSpec};
use bip_core::{system_to_dot, State, System};
use common::random_system;
use proptest::prelude::*;

/// Lockstep BFS over (original, transformed) state pairs, asserting the
/// successor sets agree step-for-step after projecting the transformed
/// states back onto the original's components.
fn assert_bisimilar(orig: &System, faulty: &System, max_states: usize) {
    let key = |step_dbg: &str, st: &State| format!("{step_dbg} -> {st:?}");
    let mut seen: HashSet<State> = HashSet::new();
    let mut queue: VecDeque<(State, State)> = VecDeque::new();
    let init = (orig.initial_state(), faulty.initial_state());
    assert_eq!(
        fault::project_state(orig, &init.1),
        init.0,
        "initial states must project onto each other"
    );
    seen.insert(init.0.clone());
    queue.push_back(init);
    while let Some((so, sf)) = queue.pop_front() {
        let mut succ_o: Vec<(String, State)> = orig
            .successors(&so)
            .into_iter()
            .map(|(step, st)| (format!("{step:?}"), st))
            .collect();
        let mut succ_f: Vec<(String, State, State)> = faulty
            .successors(&sf)
            .into_iter()
            .map(|(step, st)| {
                let proj = fault::project_state(orig, &st);
                (format!("{step:?}"), proj, st)
            })
            .collect();
        succ_o.sort_by_key(|(step, st)| key(step, st));
        succ_f.sort_by_key(|(step, proj, _)| key(step, proj));
        let keys_o: Vec<String> = succ_o.iter().map(|(s, st)| key(s, st)).collect();
        let keys_f: Vec<String> = succ_f.iter().map(|(s, proj, _)| key(s, proj)).collect();
        assert_eq!(
            keys_o, keys_f,
            "successor sets diverge at {so:?} (faulty side {sf:?})"
        );
        for ((_, st_o), (_, _, st_f)) in succ_o.into_iter().zip(succ_f) {
            if seen.len() < max_states && seen.insert(st_o.clone()) {
                queue.push_back((st_o, st_f));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An empty spec is the identity transform, down to the DOT rendering.
    #[test]
    fn empty_spec_is_identity(seed in 0u64..192) {
        let sys = random_system(seed);
        let same = fault::inject(&sys, &FaultSpec::none()).unwrap();
        prop_assert_eq!(system_to_dot(&same), system_to_dot(&sys));
    }

    /// Crash machinery under a zero budget is invisible: the transformed
    /// system is step-for-step bisimilar to the original.
    #[test]
    fn zero_budget_is_bisimilar(seed in 0u64..192) {
        let sys = random_system(seed);
        let spec = FaultSpec::crash_all().unrecoverable().budget(0);
        let faulty = fault::inject(&sys, &spec).unwrap();
        assert_bisimilar(&sys, &faulty, 200);
    }

    /// Every crash state the transform introduces is reachable — at depth 1
    /// already, since crashes leave every location and the budget starts
    /// free.
    #[test]
    fn introduced_crash_states_are_reachable(seed in 0u64..192) {
        let sys = random_system(seed);
        let spec = FaultSpec::crash_all().unrecoverable();
        let faulty = fault::inject(&sys, &spec).unwrap();
        let crashable = fault::crashable_components(&faulty);
        prop_assert_eq!(crashable.len(), sys.num_components());
        let succ = faulty.successors(&faulty.initial_state());
        for c in crashable {
            let bot = fault::crashed_loc(&faulty, c).unwrap();
            prop_assert!(
                succ.iter().any(|(_, st)| st.locs[c] == bot),
                "component {}'s crash state must be a depth-1 successor",
                c
            );
        }
    }
}
