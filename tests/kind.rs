//! Differential proof-checking harness: cross-validation of the k-induction
//! prover against the explicit-state engine, BMC, and an independent
//! certificate checker.
//!
//! The prover's three verdicts each get an adversary that shares as little
//! machinery with it as possible:
//!
//! * `Proved { k }` — exhaustive BFS must agree the invariant holds; the
//!   inductive step is re-derived by [`certify_step`] in a **fresh** solver
//!   sharing no state with the prover; and BMC at bound `k` must confirm the
//!   base case (`NoViolationWithin(k)`).
//! * `Violated { trace, states }` — exhaustive BFS must also find a
//!   violation at the same shortest depth; the trace is **re-replayed here**
//!   step-by-step through `System::successors` (not trusting the prover's
//!   own replay); and BMC at the trace depth must find an equal-length
//!   counterexample.
//! * `Unknown` — always tolerated (bounded resources), never wrong.
//!
//! Determinism: verdicts derive from SAT/UNSAT answers only, so reports must
//! be identical across restart policies (modulo `Wall`/stats), and repeated
//! identical runs must match field-for-field including solver statistics.

use bip_core::{dining_philosophers, StatePred, System};
use bip_verify::bmc::{BmcConfig, BmcOutcome};
use bip_verify::control::Budget;
use bip_verify::kind::{certify_step, KindConfig, KindError, Verdict};
use bip_verify::reach::{check_invariant_with, ReachConfig};
use proptest::prelude::*;
use satkit::RestartPolicy;

mod common;
use common::random_system;

/// Induction depth the harness attempts per seed.
const MAX_K: usize = 10;
/// Cumulative conflict ceiling per proof attempt (both solvers).
const CONFLICT_CAP: u64 = 50_000;

/// A seed-dependent invariant mixing location and data predicates (same
/// shape as the BMC harness, so the two differential suites stay
/// comparable).
fn pick_invariant(sys: &System, seed: u64) -> StatePred {
    let ty = sys.atom_type(0);
    let last_loc = (ty.locations().len() - 1) as u32;
    if seed % 2 == 1 && !ty.vars().is_empty() {
        StatePred::Eq(bip_core::GExpr::var(0, 0), bip_core::GExpr::int(2)).not()
    } else {
        StatePred::at_loc(0, last_loc).not()
    }
}

/// Re-replay a counterexample with machinery the prover never touches:
/// `System::successors` enumeration plus direct invariant evaluation.
fn independent_replay(
    sys: &System,
    inv: &StatePred,
    trace: &[bip_core::Step],
    states: &[bip_core::State],
) -> Result<(), String> {
    if states.len() != trace.len() + 1 {
        return Err(format!("{} states for {} steps", states.len(), trace.len()));
    }
    if states[0] != sys.initial_state() {
        return Err("trace does not start at the initial state".into());
    }
    for (i, step) in trace.iter().enumerate() {
        let ok = sys
            .successors(&states[i])
            .into_iter()
            .any(|(s, next)| &s == step && next == states[i + 1]);
        if !ok {
            return Err(format!("step {i} is not a concrete transition"));
        }
    }
    if inv.eval(sys, states.last().unwrap()) {
        return Err("final state does not violate the invariant".into());
    }
    Ok(())
}

/// Core differential check for one random system; returns `Err` for
/// proptest.
fn check_agreement(seed: u64) -> Result<(), String> {
    let sys = random_system(seed);
    let inv = pick_invariant(&sys, seed);

    let bfs = check_invariant_with(&sys, &inv, &ReachConfig::bounded(100_000));
    if !bfs.complete {
        return Ok(()); // state space outgrew the budget; nothing exact to compare
    }

    let report = match KindConfig::new(&sys)
        .max_k(MAX_K)
        .budget(Budget::unlimited().conflicts(CONFLICT_CAP))
        .prove(&inv)
    {
        Ok(r) => r,
        // The encoder may decline (unbounded variable / support too large);
        // that must be a typed decline, and then there is nothing to compare.
        Err(KindError::Encode(_)) => return Ok(()),
        Err(other) => return Err(format!("seed {seed}: unexpected kind error {other}")),
    };

    match &report.verdict {
        Verdict::Proved { k } => {
            if let Some((_, trace)) = &bfs.violation {
                return Err(format!(
                    "seed {seed}: k-induction claims a proof at k={k} but BFS finds a \
                     violation at depth {}",
                    trace.len()
                ));
            }
            // Certificate: the inductive step re-derived in a fresh solver…
            match certify_step(&sys, &inv, *k, 4096) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(format!(
                        "seed {seed}: fresh-solver certificate rejects the k={k} step"
                    ))
                }
                Err(e) => return Err(format!("seed {seed}: certificate errored: {e}")),
            }
            // …and the base case re-derived by BMC.
            let base = BmcConfig::new(&sys)
                .bound(*k)
                .check_invariant(&inv)
                .map_err(|e| format!("seed {seed}: BMC base re-check errored: {e}"))?;
            if !matches!(base.outcome, BmcOutcome::NoViolationWithin(_)) {
                return Err(format!(
                    "seed {seed}: BMC refutes the k={k} base case of a claimed proof"
                ));
            }
        }
        Verdict::Violated { trace, states } => {
            let Some((_, bfs_trace)) = &bfs.violation else {
                return Err(format!(
                    "seed {seed}: k-induction reports a {}-step violation but exhaustive \
                     BFS proves the invariant",
                    trace.len()
                ));
            };
            if trace.len() != bfs_trace.len() {
                return Err(format!(
                    "seed {seed}: k-induction trace has {} steps, BFS shortest is {}",
                    trace.len(),
                    bfs_trace.len()
                ));
            }
            independent_replay(&sys, &inv, trace, states)
                .map_err(|e| format!("seed {seed}: independent replay failed: {e}"))?;
            let bmc = BmcConfig::new(&sys)
                .bound(trace.len())
                .check_invariant(&inv)
                .map_err(|e| format!("seed {seed}: BMC re-check errored: {e}"))?;
            match bmc.outcome {
                BmcOutcome::Violation { trace: t, .. } if t.len() == trace.len() => {}
                other => {
                    return Err(format!(
                        "seed {seed}: BMC at bound {} disagrees with the k-induction \
                         violation: {other:?}",
                        trace.len()
                    ))
                }
            }
        }
        Verdict::Unknown(_) => {} // bounded resources; never wrong
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random systems: every definitive k-induction verdict must survive
    /// its adversary (exhaustive BFS + fresh-solver certificate + BMC).
    #[test]
    fn kind_agrees_with_explicit_search_and_bmc(seed in 0u64..192) {
        if let Err(msg) = check_agreement(seed) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// "Adjacent philosophers never eat together" in the conservative variant —
/// a true invariant that is not 1-inductive (an arbitrary state with
/// philosopher 0 eating says nothing about its neighbour's fork), so the
/// proof exercises depths k > 0 and the simple-path constraints.
fn adjacent_mutex(n: usize) -> StatePred {
    StatePred::And(
        (0..n)
            .map(|i| {
                StatePred::Not(Box::new(StatePred::And(vec![
                    StatePred::AtLoc(i, 1),
                    StatePred::AtLoc((i + 1) % n, 1),
                ])))
            })
            .collect(),
    )
}

/// Verdicts derive from SAT/UNSAT answers only — semantic, hence identical
/// across restart policies. `ProofReport` equality covers verdict and stop
/// (stats and wall-clock compare equal by design).
#[test]
fn reports_are_identical_across_restart_policies() {
    let workloads: Vec<(System, StatePred)> = vec![
        (dining_philosophers(4, false).unwrap(), adjacent_mutex(4)),
        (random_system(7), pick_invariant(&random_system(7), 7)),
        (random_system(12), pick_invariant(&random_system(12), 12)),
    ];
    for (sys, inv) in &workloads {
        let run = |policy: RestartPolicy| {
            KindConfig::new(sys)
                .max_k(MAX_K)
                .budget(Budget::unlimited().conflicts(CONFLICT_CAP))
                .restart_policy(policy)
                .prove(inv)
        };
        let hybrid = run(RestartPolicy::hybrid());
        let luby = run(RestartPolicy::luby());
        let glucose = run(RestartPolicy::glucose());
        match (hybrid, luby, glucose) {
            (Ok(h), Ok(l), Ok(g)) => {
                assert_eq!(h, l, "hybrid vs luby");
                assert_eq!(h, g, "hybrid vs glucose");
            }
            (h, l, g) => panic!("runs errored: {h:?} {l:?} {g:?}"),
        }
    }
}

/// The solvers are deterministic: repeated identical runs must agree
/// field-for-field, *including* the Eq-excluded solver statistics.
#[test]
fn repeated_runs_are_bit_identical() {
    let sys = dining_philosophers(4, false).unwrap();
    let inv = adjacent_mutex(4);
    let run = || {
        KindConfig::new(&sys)
            .max_k(MAX_K)
            .prove(&inv)
            .expect("encodable")
    };
    let a = run();
    let b = run();
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.stop, b.stop);
    assert_eq!(a.stats.base_conflicts, b.stats.base_conflicts);
    assert_eq!(a.stats.base_decisions, b.stats.base_decisions);
    assert_eq!(a.stats.base_propagations, b.stats.base_propagations);
    assert_eq!(a.stats.base_vars, b.stats.base_vars);
    assert_eq!(a.stats.base_clauses, b.stats.base_clauses);
    assert_eq!(a.stats.step_conflicts, b.stats.step_conflicts);
    assert_eq!(a.stats.step_decisions, b.stats.step_decisions);
    assert_eq!(a.stats.step_propagations, b.stats.step_propagations);
    assert_eq!(a.stats.step_vars, b.stats.step_vars);
    assert_eq!(a.stats.step_clauses, b.stats.step_clauses);
    assert_eq!(a.stats.core_frames, b.stats.core_frames);
}

/// A conflict budget of 1 must surface as `Unknown`, never as a wrong (or
/// lucky) verdict. The test self-validates: the unbudgeted run must actually
/// need more than one conflict, otherwise the cap would not bite.
#[test]
fn conflict_budget_of_one_is_unknown_never_wrong() {
    let sys = dining_philosophers(4, false).unwrap();
    let inv = adjacent_mutex(4);
    let free = KindConfig::new(&sys).max_k(MAX_K).prove(&inv).unwrap();
    assert!(
        matches!(free.verdict, Verdict::Proved { .. }),
        "workload sanity: {:?}",
        free.verdict
    );
    assert!(
        free.stats.base_conflicts + free.stats.step_conflicts > 1,
        "workload sanity: the unbudgeted proof must cost > 1 conflict \
         (base={}, step={})",
        free.stats.base_conflicts,
        free.stats.step_conflicts
    );
    let capped = KindConfig::new(&sys)
        .max_k(MAX_K)
        .budget(Budget::unlimited().conflicts(1))
        .prove(&inv)
        .unwrap();
    assert!(
        matches!(capped.verdict, Verdict::Unknown(_)),
        "a 1-conflict budget cannot produce a verdict, got {:?}",
        capped.verdict
    );
}

/// Sweeping the conflict budget from starved to generous: every capped run
/// returns either `Unknown` or *the same verdict* as the unbudgeted run —
/// budgets trade completeness for time, never soundness.
#[test]
fn budget_sweep_is_sound() {
    let sys = dining_philosophers(4, false).unwrap();
    let inv = adjacent_mutex(4);
    let free = KindConfig::new(&sys).max_k(MAX_K).prove(&inv).unwrap();
    for cap in [1u64, 10, 100, 1_000, 100_000] {
        let capped = KindConfig::new(&sys)
            .max_k(MAX_K)
            .budget(Budget::unlimited().conflicts(cap))
            .prove(&inv)
            .unwrap();
        match capped.verdict {
            Verdict::Unknown(_) => {}
            ref v => assert_eq!(
                *v, free.verdict,
                "cap {cap}: a budgeted verdict must match the unbudgeted one"
            ),
        }
    }
}

/// Regression for the widen-to-TOP lift: a counter guarded at 100 (beyond
/// the widening cadence) must encode *and* prove its own bound, end to end
/// through the public API.
#[test]
fn guard_bounded_counter_at_limit_100_proves() {
    let counter = bip_core::AtomBuilder::new("counter")
        .location("run")
        .initial("run")
        .var("n", 0)
        .internal_transition(
            "run",
            bip_core::Expr::var(0).lt(bip_core::Expr::int(100)),
            vec![("n", bip_core::Expr::var(0).add(bip_core::Expr::int(1)))],
            "run",
        )
        .build()
        .unwrap();
    let mut sb = bip_core::SystemBuilder::new();
    sb.add_instance("c", &counter);
    let sys = sb.build().unwrap();
    let inv = StatePred::Le(bip_core::GExpr::var(0, 0), bip_core::GExpr::int(100));
    let r = KindConfig::new(&sys).max_k(4).prove(&inv).unwrap();
    let Verdict::Proved { k } = r.verdict else {
        panic!("expected a proof, got {:?}", r.verdict);
    };
    assert!(certify_step(&sys, &inv, k, 4096).unwrap());
    // The same system refutes a tighter false bound, concretely replayed.
    let false_inv = StatePred::Le(bip_core::GExpr::var(0, 0), bip_core::GExpr::int(50));
    let r = KindConfig::new(&sys).max_k(64).prove(&false_inv).unwrap();
    let (trace, states) = r.violation().expect("n reaches 51");
    assert_eq!(trace.len(), 51);
    independent_replay(&sys, &false_inv, trace, states).unwrap();
}
