//! Integration: both engines execute a textually-parsed model and agree
//! with the semantics (Fig. 5.7's multiple compilation/execution chains).

use bip_engine::{run_threaded, RandomPolicy, SequentialEngine, StopReason};

const MODEL: &str = r#"
atom Sensor {
  port sample, emit
  var reading = 0
  location idle init
  location got
  on sample from idle to got when reading < 50 do reading := reading + 7
  on emit from got to idle
}

atom Bus {
  port push, pop
  location empty init
  location full
  on push from empty to full
  on pop from full to empty
}

system {
  instance s0 : Sensor
  instance s1 : Sensor
  instance bus : Bus
  connector emit0 = s0.emit + bus.push
  connector emit1 = s1.emit + bus.push
  connector drain = bus.pop
  connector sample0 = s0.sample
  connector sample1 = s1.sample
  priority sample1 < sample0
}
"#;

#[test]
fn sequential_engine_runs_parsed_model() {
    let sys = bip_core::parse_system(MODEL).unwrap();
    let mut engine = SequentialEngine::new(sys, RandomPolicy::new(5));
    let report = engine.run(100);
    // Guards eventually stop the sensors (reading caps at 50+7), so either
    // budget exhaustion or a quiescent deadlock is acceptable — but steps
    // must have happened.
    assert!(report.steps > 10);
    assert!(matches!(
        report.stop,
        StopReason::BudgetExhausted | StopReason::Deadlock
    ));
}

#[test]
fn threaded_engine_agrees_with_semantics_on_parsed_model() {
    let sys = bip_core::parse_system(MODEL).unwrap();
    let r = run_threaded(&sys, 40, 11);
    // The observable word must be replayable in the sequential semantics.
    let mut st = sys.initial_state();
    for label in &r.word {
        let succ = sys.successors(&st);
        let hit = succ
            .iter()
            .find(|(s, _)| sys.step_label(s) == Some(label.as_str()))
            .unwrap_or_else(|| panic!("threaded fired {label}, not enabled sequentially"));
        st = hit.1.clone();
    }
}

#[test]
fn parsed_priorities_are_respected() {
    let sys = bip_core::parse_system(MODEL).unwrap();
    let st = sys.initial_state();
    // Both sample connectors would be enabled; priority keeps only sample0.
    let enabled: Vec<&str> = sys
        .enabled(&st)
        .iter()
        .map(|i| sys.connector(i.connector).name.as_str())
        .collect();
    assert!(enabled.contains(&"sample0"));
    assert!(!enabled.contains(&"sample1"), "{enabled:?}");
}
