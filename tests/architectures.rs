//! Integration tests for experiment E9: architecture application and
//! composition (§5.5.2, [4]).

use bip_arch::{
    at_most_as_permissive, client_critical, clients, compose, fifo_scheduler, mutual_exclusion,
    tmr, token_ring,
};
use bip_verify::reach::{check_invariant, explore};

#[test]
fn architectures_enforce_and_preserve_across_sizes() {
    for n in 2..=4 {
        let base = clients(n);
        for arch in [
            mutual_exclusion(client_critical(n)),
            token_ring(client_critical(n)),
        ] {
            let sys = arch.apply(&base).unwrap();
            let prop = arch.characteristic_property(&sys);
            assert!(
                check_invariant(&sys, &prop, 1_000_000).holds(),
                "{} n={n}",
                arch.name
            );
            assert!(
                explore(&sys, 1_000_000).deadlock_free(),
                "{} n={n}",
                arch.name
            );
        }
    }
}

#[test]
fn composition_satisfies_both_characteristic_properties() {
    for n in 2..=3 {
        let base = clients(n);
        let m = mutual_exclusion(client_critical(n));
        let f = fifo_scheduler(client_critical(n));
        let sys = compose(&base, &m, &f).unwrap();
        assert!(check_invariant(&sys, &m.characteristic_property(&sys), 1_000_000).holds());
        assert!(check_invariant(&sys, &f.characteristic_property(&sys), 1_000_000).holds());
        assert!(explore(&sys, 1_000_000).deadlock_free());
    }
}

#[test]
fn lattice_order_is_a_preorder_on_applications() {
    let base = clients(2);
    let ring = token_ring(client_critical(2)).apply(&base).unwrap();
    let mutex = mutual_exclusion(client_critical(2)).apply(&base).unwrap();
    // Reflexivity.
    assert!(at_most_as_permissive(&ring, &ring, 100_000));
    assert!(at_most_as_permissive(&mutex, &mutex, 100_000));
    // Strictness: ring < mutex.
    assert!(at_most_as_permissive(&ring, &mutex, 100_000));
    assert!(!at_most_as_permissive(&mutex, &ring, 100_000));
}

#[test]
fn tmr_is_a_correct_fault_tolerant_architecture() {
    let (sys, prop) = tmr();
    assert!(check_invariant(&sys, &prop, 1_000_000).holds());
    assert!(explore(&sys, 1_000_000).deadlock_free());
}
