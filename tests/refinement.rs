//! Integration tests for experiment E6: Fig. 5.4 interaction refinement.

use bip_distributed::fig54::fig54_conflict_pair;
use bip_distributed::refine_interactions;
use bip_verify::reach::{explore, find_deadlock};
use bip_verify::{refines, weak_trace_equivalent};

#[test]
fn top_half_single_interaction_equivalent() {
    let t = bip_core::AtomBuilder::new("t")
        .port("p")
        .location("l")
        .initial("l")
        .transition("l", "p", "l")
        .build()
        .unwrap();
    let mut sb = bip_core::SystemBuilder::new();
    let c1 = sb.add_instance("C1", &t);
    let c2 = sb.add_instance("C2", &t);
    sb.add_connector(bip_core::ConnectorBuilder::rendezvous(
        "a",
        [(c1, "p"), (c2, "p")],
    ));
    let orig = sb.build().unwrap();
    let refined = refine_interactions(&orig).unwrap();
    assert!(weak_trace_equivalent(
        &orig,
        &refined.system,
        &refined.rename(),
        100_000
    ));
    assert!(refines(&orig, &refined.system, refined.rename(), 100_000).refines());
}

#[test]
fn bottom_half_conflicts_break_stability() {
    let (orig, refined) = fig54_conflict_pair();
    assert!(explore(&orig, 100_000).deadlock_free());
    let dead = find_deadlock(&refined.system, 500_000);
    assert!(dead.found(), "circular str commitment must deadlock");
    assert!(!refines(&orig, &refined.system, refined.rename(), 500_000).refines());
}

#[test]
fn sr_systems_are_binary_only() {
    let (_, refined) = fig54_conflict_pair();
    for c in refined.system.connectors() {
        assert!(
            c.ports.len() <= 2,
            "S/R-BIP must use binary interactions: {}",
            c.name
        );
    }
}
