//! Integration tests for experiment E4: the Lustre embedding is
//! semantics-preserving and size-linear (Fig. 5.2, §5.6).

use bip_embed::lustre::Program;
use bip_embed::{embed_program, integrator};

#[test]
fn integrator_reproduces_figure_streams() {
    let p = integrator();
    let e = embed_program(&p).unwrap();
    let xs = vec![vec![1, 1, 1, 1, 1, 1]];
    assert_eq!(e.run(&xs, 6), vec![vec![1, 2, 3, 4, 5, 6]]);
}

#[test]
fn embedding_agrees_with_interpreter_over_many_programs() {
    for seed in 0..20 {
        let p = Program::random(10, seed);
        let e = embed_program(&p).unwrap();
        let xs = vec![(0..16).map(|i| (7 - i) as i64).collect::<Vec<i64>>()];
        assert_eq!(e.run(&xs, 16), p.eval(&xs, 16), "seed {seed}");
    }
}

#[test]
fn model_size_is_linear_in_program_size() {
    let mut per_node = Vec::new();
    for k in [8usize, 16, 32, 64, 128] {
        let p = Program::random(k, 1);
        let e = embed_program(&p).unwrap();
        let (atoms, conns, trans) = e.size();
        assert_eq!(atoms, k + 1);
        per_node.push(trans as f64 / (k + 1) as f64);
        assert!(conns <= k + 3);
    }
    // Transitions per node stay bounded (linear overall): the max/min ratio
    // across the sweep is close to 1.
    let max = per_node.iter().cloned().fold(f64::MIN, f64::max);
    let min = per_node.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.5,
        "per-node cost must be ~constant: {per_node:?}"
    );
}
