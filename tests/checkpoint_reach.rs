//! Checkpoint/resume invisibility for the reachability engine.
//!
//! The control layer's core guarantee: a run interrupted at *any* level
//! boundary and resumed produces a final report **bit-identical** to the
//! uninterrupted run — states, transitions, deadlock list (order
//! included), completeness, stored/peak footprint, and stop reason
//! (`elapsed` is the one field allowed to differ; it accumulates across
//! resumes by design).
//!
//! The proptests force an interruption at *every* level boundary by
//! chaining state-budgeted hops: start with `Budget::states(1)` (trips at
//! the first boundary), then repeatedly resume with the budget set one
//! state past the checkpoint, so each hop crosses exactly the next
//! boundary. The chain runs on random systems and philosophers, across
//! 1/2/8 worker threads and both `Reduction` modes, under both generous
//! and truncating engine bounds (a budget trip and the engine's own
//! `max_states` bound compose: the final hop ends exactly like the
//! straight run, `Completed` or `BoundExhausted`, with no checkpoint).

use bip_core::dining_philosophers;
use bip_verify::reach::{explore_resume, explore_with, ReachConfig, ReachReport, Reduction};
use bip_verify::{Budget, StopReason};
use proptest::prelude::*;

mod common;
use common::random_system;

/// Bit-identity over every report field except `elapsed`.
fn assert_bit_identical(a: &ReachReport, b: &ReachReport, ctx: &str) -> Result<(), String> {
    if a.states != b.states || a.transitions != b.transitions {
        return Err(format!(
            "{ctx}: counts diverged: ({}, {}) vs ({}, {})",
            a.states, a.transitions, b.states, b.transitions
        ));
    }
    if a.deadlocks != b.deadlocks {
        return Err(format!("{ctx}: deadlock lists diverged"));
    }
    if a.complete != b.complete || a.stop != b.stop {
        return Err(format!(
            "{ctx}: termination diverged: ({}, {:?}) vs ({}, {:?})",
            a.complete, a.stop, b.complete, b.stop
        ));
    }
    if a.stored_bytes != b.stored_bytes || a.peak_bytes != b.peak_bytes {
        return Err(format!(
            "{ctx}: footprint diverged: ({}, {}) vs ({}, {})",
            a.stored_bytes, a.peak_bytes, b.stored_bytes, b.peak_bytes
        ));
    }
    if a.checkpoint.is_some() || b.checkpoint.is_some() {
        return Err(format!("{ctx}: a finished run must not carry a checkpoint"));
    }
    Ok(())
}

/// Run `sys` under `cfg`, interrupted at every level boundary: the first
/// run is budgeted to one state, every resume to one state past the
/// previous cut. Returns the final report and the number of resumes.
fn chained_resume(sys: &bip_core::System, cfg: &ReachConfig) -> (ReachReport, usize) {
    let mut hops = 0usize;
    let mut r = explore_with(sys, &cfg.clone().budget(Budget::unlimited().states(1)));
    loop {
        match r.checkpoint.take() {
            None => return (r, hops),
            Some(ck) => {
                hops += 1;
                assert_eq!(r.stop, StopReason::StateBudget, "hop {hops}: stop reason");
                assert!(!r.complete, "hop {hops}: interrupted runs are incomplete");
                let next = cfg
                    .clone()
                    .budget(Budget::unlimited().states(ck.states() + 1));
                r = explore_resume(sys, &next, ck);
            }
        }
    }
}

/// One straight run vs the boundary-by-boundary chained run.
fn check(sys: &bip_core::System, cfg: &ReachConfig, ctx: &str) -> Result<(), String> {
    let straight = explore_with(sys, cfg);
    let (chained, hops) = chained_resume(sys, cfg);
    assert_bit_identical(&chained, &straight, &format!("{ctx} ({hops} hops)"))
}

fn configs(bound: usize, threads: usize, reduction: Reduction) -> ReachConfig {
    ReachConfig::bounded(bound)
        .threads(threads)
        .min_parallel_level(1)
        .reduction(reduction)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random systems: every-boundary resume is invisible for every thread
    /// count and both reduction modes, under a generous bound.
    #[test]
    fn chained_resume_is_bit_identical_on_random_systems(seed in 0u64..120) {
        let sys = random_system(seed);
        for reduction in [Reduction::None, Reduction::Persistent] {
            for threads in [1usize, 2, 8] {
                let cfg = configs(2_000, threads, reduction);
                if let Err(e) = check(&sys, &cfg, &format!("seed {seed} threads {threads} {reduction:?}")) {
                    prop_assert!(false, "{}", e);
                }
            }
        }
    }

    /// Truncating engine bounds compose with budget hops: the straight run
    /// ends `BoundExhausted`, and so must the chained run — at the same
    /// counts, with no checkpoint.
    #[test]
    fn chained_resume_respects_engine_bounds(seed in 0u64..80, bound in 5usize..60) {
        let sys = random_system(seed);
        for threads in [1usize, 8] {
            let cfg = configs(bound, threads, Reduction::None);
            if let Err(e) = check(&sys, &cfg, &format!("seed {seed} bound {bound} threads {threads}")) {
                prop_assert!(false, "{}", e);
            }
        }
    }

    /// Philosophers (both variants): the deadlock lists a chained run
    /// reports are identical, order included, to the straight run's.
    #[test]
    fn chained_resume_preserves_deadlocks_on_philosophers(n in 2usize..5, variant in 0u8..2) {
        let two_phase = variant == 1;
        let sys = dining_philosophers(n, two_phase).unwrap();
        for reduction in [Reduction::None, Reduction::Persistent] {
            for threads in [1usize, 2, 8] {
                let cfg = configs(1_000_000, threads, reduction);
                if let Err(e) = check(&sys, &cfg, &format!("phil {n} 2p={two_phase} threads {threads} {reduction:?}")) {
                    prop_assert!(false, "{}", e);
                }
            }
        }
    }
}
